package control

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"press/internal/element"
	"press/internal/obs"
)

func instrTestArray(n int) *element.Array {
	elems := make([]*element.Element, n)
	for i := range elems {
		elems[i] = &element.Element{States: element.SP4TStates()}
	}
	return element.NewArray(elems...)
}

// instrTestEval scores configurations by the sum of their state indices —
// a deterministic landscape with a known optimum (all max states).
func instrTestEval(cfg element.Config) (float64, error) {
	s := 0.0
	for _, v := range cfg {
		s += float64(v)
	}
	return s, nil
}

func TestInstrumentedRecordsRun(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf strings.Builder
	log := obs.NewLogger(&logBuf, obs.LevelDebug, obs.Logfmt)
	arr := instrTestArray(3)

	s := Instrument(Greedy{Rng: rand.New(rand.NewPCG(1, 2))}, reg, log)
	if s.Name() != "greedy" {
		t.Errorf("name = %q", s.Name())
	}
	res, err := s.Search(arr, instrTestEval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("search_evaluations_total").Value(); got != int64(res.Evaluations) {
		t.Errorf("evaluations counter = %d, result reports %d", got, res.Evaluations)
	}
	if got := reg.Counter("search_runs_total").Value(); got != 1 {
		t.Errorf("runs counter = %d", got)
	}
	if got := reg.Gauge("search_best_objective").Value(); got != res.BestScore {
		t.Errorf("best gauge = %g, result %g", got, res.BestScore)
	}
	snap := reg.Snapshot()
	sp, ok := snap.Spans["search/greedy"]
	if !ok || sp.Count != 1 {
		t.Errorf("search span missing: %+v", snap.Spans)
	}
	if !strings.Contains(logBuf.String(), "search: best improved") {
		t.Error("no trajectory events logged")
	}
	if !strings.Contains(logBuf.String(), "msg=\"search: finished\"") {
		t.Errorf("no summary event logged:\n%s", logBuf.String())
	}
}

func TestInstrumentedBudgetExhaustion(t *testing.T) {
	reg := obs.NewRegistry()
	arr := instrTestArray(4)
	s := Instrument(Exhaustive{}, reg, nil)
	res, err := s.Search(arr, instrTestEval, 10)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := reg.Counter("search_evaluations_total").Value(); got != 10 {
		t.Errorf("evaluations counter = %d, want the budget 10", got)
	}
	if res.Evaluations != 10 {
		t.Errorf("result evaluations = %d", res.Evaluations)
	}
	if got := reg.Gauge("search_budget").Value(); got != 10 {
		t.Errorf("budget gauge = %g", got)
	}
}

// TestInstrumentDisabledPassThrough: with no registry and no logger the
// searcher must come back unwrapped so default callers pay nothing.
func TestInstrumentDisabledPassThrough(t *testing.T) {
	base := HillClimb{Rng: rand.New(rand.NewPCG(3, 4))}
	if s := Instrument(base, nil, nil); s != Searcher(base) {
		t.Error("disabled Instrument still wrapped the searcher")
	}
}

// TestInstrumentedSameResult: instrumentation must not perturb the
// search itself — identical seeds give identical outcomes.
func TestInstrumentedSameResult(t *testing.T) {
	arr := instrTestArray(4)
	plain, err := (Anneal{Rng: rand.New(rand.NewPCG(7, 8)), Steps: 40}).Search(arr, instrTestEval, 0)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := Instrument(Anneal{Rng: rand.New(rand.NewPCG(7, 8)), Steps: 40}, obs.NewRegistry(), nil).
		Search(arr, instrTestEval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestScore != wrapped.BestScore || plain.Evaluations != wrapped.Evaluations {
		t.Errorf("instrumentation changed the search: %+v vs %+v", plain, wrapped)
	}
}
