// Package control implements the PRESS controller: the objectives that
// encode the paper's three applications (link enhancement, large-MIMO
// conditioning, network harmonization; §1) and the search algorithms that
// navigate the M^N configuration space (§4.2) under a measurement budget
// set by the channel coherence time (§2).
package control

import (
	"math"

	"press/internal/ofdm"
	"press/internal/stats"
)

// Objective scores one link measurement; higher is better. Implementations
// are pure functions of the CSI so they can be evaluated on recorded
// sweeps as well as live measurements.
type Objective interface {
	// Name identifies the objective in reports.
	Name() string
	// Score maps a CSI to a scalar merit.
	Score(csi *ofdm.CSI) float64
}

// MaxMinSNR maximizes the worst subcarrier SNR — the link-enhancement
// goal: lifting the deepest null lifts the whole-channel bit rate, and
// "spatial dead spots ... are often the result of this problem" (§1).
type MaxMinSNR struct{}

// Name implements Objective.
func (MaxMinSNR) Name() string { return "max-min-snr" }

// Score implements Objective.
func (MaxMinSNR) Score(csi *ofdm.CSI) float64 { return csi.MinSNRdB() }

// MaxMeanSNR maximizes the mean subcarrier SNR — raw signal boost.
type MaxMeanSNR struct{}

// Name implements Objective.
func (MaxMeanSNR) Name() string { return "max-mean-snr" }

// Score implements Objective.
func (MaxMeanSNR) Score(csi *ofdm.CSI) float64 { return stats.Mean(csi.SNRdB) }

// Flatness rewards a channel with little SNR spread across subcarriers —
// the "flatter channel" §1 argues OFDM bit-rate selection wants. The
// score is the negated SNR standard deviation, offset by the mean so that
// between two equally flat channels the stronger one wins.
type Flatness struct{}

// Name implements Objective.
func (Flatness) Name() string { return "flatness" }

// Score implements Objective.
func (Flatness) Score(csi *ofdm.CSI) float64 {
	if len(csi.SNRdB) < 2 {
		return math.Inf(-1)
	}
	return 0.1*stats.Mean(csi.SNRdB) - stats.StdDev(csi.SNRdB)
}

// Throughput maximizes the estimated MCS-ladder throughput of the link —
// the end-to-end quantity the paper's applications ultimately target.
type Throughput struct{}

// Name implements Objective.
func (Throughput) Name() string { return "throughput" }

// Score implements Objective.
func (Throughput) Score(csi *ofdm.CSI) float64 {
	return ofdm.ThroughputMbps(csi.Grid, csi.SNRdB)
}

// BoostSubcarrier maximizes the SNR of one chosen subcarrier — the
// null-shifting primitive: pick the subcarrier currently in a null and
// search for the configuration that moves the null away.
type BoostSubcarrier struct {
	// K is the used-subcarrier position to protect.
	K int
}

// Name implements Objective.
func (BoostSubcarrier) Name() string { return "boost-subcarrier" }

// Score implements Objective.
func (b BoostSubcarrier) Score(csi *ofdm.CSI) float64 {
	if b.K < 0 || b.K >= len(csi.SNRdB) {
		return math.Inf(-1)
	}
	return csi.SNRdB[b.K]
}

// HalfBandContrast scores how strongly a channel favours one half of the
// band over the other: +contrast prefers the lower half, −contrast the
// upper. It is the single-link building block of the §3.2.2 network
// harmonization experiment (Figure 7), where two links want opposite
// signs.
type HalfBandContrast struct {
	// PreferLower selects which half this link should be strong in.
	PreferLower bool
}

// Name implements Objective.
func (h HalfBandContrast) Name() string {
	if h.PreferLower {
		return "half-band-contrast(lower)"
	}
	return "half-band-contrast(upper)"
}

// Score implements Objective.
func (h HalfBandContrast) Score(csi *ofdm.CSI) float64 {
	n := len(csi.SNRdB)
	if n < 2 {
		return math.Inf(-1)
	}
	lower := stats.Mean(csi.SNRdB[:n/2])
	upper := stats.Mean(csi.SNRdB[n/2:])
	if h.PreferLower {
		return lower - upper
	}
	return upper - lower
}
