package control

import (
	"fmt"
	"math"
	"math/rand/v2"

	"press/internal/element"
)

// ContinuousEvalFunc measures one continuous-phase configuration.
type ContinuousEvalFunc func(phases element.ContinuousConfig) (float64, error)

// ContinuousResult is the outcome of a continuous-phase search.
type ContinuousResult struct {
	Best        element.ContinuousConfig
	BestScore   float64
	Evaluations int
	Trace       []float64
}

// SPSA optimizes continuous reflection phases with simultaneous
// perturbation stochastic approximation — two measurements per iteration
// regardless of dimension, and inherently tolerant of measurement noise.
// It is the natural controller for the "continuously-variable phase
// shifting hardware" the paper plans to test (§4.1).
type SPSA struct {
	// Rng drives the perturbation directions; required.
	Rng *rand.Rand
	// Iterations bounds the walk (default 60 → 120+ measurements).
	Iterations int
	// A is the initial step size in radians (default 0.8); C the initial
	// perturbation size (default 0.4). Both decay per the standard SPSA
	// gain schedules a_k = A/(k+1+A0)^0.602, c_k = C/(k+1)^0.101.
	A, C float64
	// Restarts is the number of independent starts (default 2).
	Restarts int
}

// Name identifies the algorithm.
func (SPSA) Name() string { return "spsa" }

// Search optimizes phases for arr through eval, spending at most budget
// measurements (0 = unlimited). All elements start reflective at random
// phases; SPSA never switches elements off (the off state is not
// differentiable — pair it with a discrete searcher if needed).
func (s SPSA) Search(arr *element.Array, eval ContinuousEvalFunc, budget int) (*ContinuousResult, error) {
	if s.Rng == nil {
		return nil, fmt.Errorf("control: SPSA needs an Rng")
	}
	iters := s.Iterations
	if iters < 1 {
		iters = 60
	}
	a0, c0 := s.A, s.C
	if a0 <= 0 {
		a0 = 0.8
	}
	if c0 <= 0 {
		c0 = 0.4
	}
	restarts := s.Restarts
	if restarts < 1 {
		restarts = 2
	}
	n := arr.N()
	if n == 0 {
		return nil, fmt.Errorf("control: empty array")
	}

	res := &ContinuousResult{BestScore: math.Inf(-1)}
	evals := 0
	measure := func(p element.ContinuousConfig) (float64, bool, error) {
		if budget > 0 && evals >= budget {
			return 0, false, nil
		}
		v, err := eval(p)
		if err != nil {
			return 0, false, err
		}
		evals++
		if v > res.BestScore {
			res.BestScore = v
			res.Best = p.Clone().Wrap()
		}
		res.Trace = append(res.Trace, res.BestScore)
		return v, true, nil
	}

	for r := 0; r < restarts; r++ {
		theta := make(element.ContinuousConfig, n)
		for i := range theta {
			theta[i] = s.Rng.Float64() * 2 * math.Pi
		}
		if _, ok, err := measure(theta); err != nil {
			return nil, err
		} else if !ok {
			break
		}
		for k := 0; k < iters; k++ {
			ak := a0 / math.Pow(float64(k+2), 0.602)
			ck := c0 / math.Pow(float64(k+1), 0.101)

			delta := make([]float64, n)
			for i := range delta {
				if s.Rng.IntN(2) == 0 {
					delta[i] = 1
				} else {
					delta[i] = -1
				}
			}
			plus := theta.Clone()
			minus := theta.Clone()
			for i := range theta {
				plus[i] += ck * delta[i]
				minus[i] -= ck * delta[i]
			}
			yp, ok, err := measure(plus.Wrap())
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			ym, ok, err := measure(minus.Wrap())
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			// Ascend: gradient estimate g_i = (y+ − y−)/(2c·Δ_i).
			g := (yp - ym) / (2 * ck)
			for i := range theta {
				theta[i] += ak * g * delta[i]
			}
			theta.Wrap()
		}
		if budget > 0 && evals >= budget {
			break
		}
	}
	res.Evaluations = evals
	if evals == 0 {
		return nil, fmt.Errorf("control: no configurations evaluated")
	}
	if budget > 0 && evals >= budget {
		return res, ErrBudgetExhausted
	}
	return res, nil
}
