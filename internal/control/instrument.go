package control

import (
	"errors"
	"math"

	"press/internal/element"
	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/health"
	"press/internal/obs/prof"
	"press/internal/obs/scope"
	"press/internal/obs/slo"
)

// Instrumented wraps any Searcher with telemetry: a per-strategy span
// ("search/<name>") for wall-time, the evaluations-consumed counter and
// budget gauge, the best-objective gauge, and best-so-far trajectory
// events on the structured log — the measure→search loop visibility the
// controller needs to stay inside its coherence budget. With both Obs
// and Log nil the wrapper degrades to bare pass-through bookkeeping.
type Instrumented struct {
	Searcher Searcher
	Obs      *obs.Registry
	Log      *obs.Logger
	// Health, when set, receives best-objective updates as the search
	// progresses — the feed behind the search_best / search_regret_db
	// channel-health KPIs.
	Health *health.Monitor
	// Flight, when set, persists every evaluation (config, score,
	// improved flag) as a search-decision record in the run log — the
	// audit trail `pressctl replay` re-verifies.
	Flight *flight.Recorder
	// Prof, when set, accounts each evaluation to the search_eval root
	// phase (wall time, configs scored) so hotspot reports can apportion
	// the search loop's cost.
	Prof *prof.Collector
	// Tracer, when set, attaches the search to the loop iteration in
	// flight: one "search" phase span per run with a per-measurement
	// child span for every evaluation, so /tracez shows where a
	// deadline-missing loop spent its coherence budget.
	Tracer *slo.Tracer
}

// Instrument wraps s unless telemetry is fully disabled, in which case
// s itself is returned and no overhead is added.
func Instrument(s Searcher, reg *obs.Registry, log *obs.Logger) Searcher {
	return InstrumentHealth(s, reg, log, nil)
}

// InstrumentHealth is Instrument plus a channel-health monitor fed with
// the best-so-far objective after every improving evaluation.
func InstrumentHealth(s Searcher, reg *obs.Registry, log *obs.Logger, h *health.Monitor) Searcher {
	return InstrumentFlight(s, reg, log, h, nil)
}

// InstrumentFlight is InstrumentHealth plus a flight recorder that logs
// every evaluation as a durable search-decision record.
func InstrumentFlight(s Searcher, reg *obs.Registry, log *obs.Logger, h *health.Monitor, rec *flight.Recorder) Searcher {
	return InstrumentProf(s, reg, log, h, rec, nil)
}

// InstrumentProf is InstrumentFlight plus a work-accounting collector
// that attributes search-evaluation cost to the search_eval phase.
func InstrumentProf(s Searcher, reg *obs.Registry, log *obs.Logger, h *health.Monitor, rec *flight.Recorder, pc *prof.Collector) Searcher {
	return InstrumentTracer(s, reg, log, h, rec, pc, nil)
}

// InstrumentTracer is InstrumentProf plus a control-loop deadline
// tracer that turns each search run into a phase span with
// per-measurement children.
func InstrumentTracer(s Searcher, reg *obs.Registry, log *obs.Logger, h *health.Monitor, rec *flight.Recorder, pc *prof.Collector, tr *slo.Tracer) Searcher {
	if reg == nil && log == nil && h == nil && rec == nil && pc == nil && tr == nil {
		return s
	}
	return Instrumented{Searcher: s, Obs: reg, Log: log, Health: h, Flight: rec, Prof: pc, Tracer: tr}
}

// InstrumentScope wraps s with every sink a telemetry scope carries —
// the session-oriented form of the Instrument* chain. A nil (or fully
// disabled) scope returns s unchanged.
func InstrumentScope(s Searcher, sc *scope.Scope) Searcher {
	return InstrumentTracer(s, sc.Registry(), sc.Logger(), sc.Health(), sc.Flight(), sc.Prof(), sc.Tracer())
}

// Name implements Searcher.
func (in Instrumented) Name() string { return in.Searcher.Name() }

// Search implements Searcher: it runs the wrapped strategy with an
// observed EvalFunc, mirroring exactly what tracker.measure sees (every
// successful evaluation, in order), and records the run's wall time.
func (in Instrumented) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	name := in.Searcher.Name()
	in.Obs.Counter("search_runs_total").Inc()
	in.Obs.Gauge("search_budget").Set(float64(budget))
	evals := in.Obs.Counter("search_evaluations_total")
	bestGauge := in.Obs.Gauge("search_best_objective")
	trajectory := in.Log.Enabled(obs.LevelDebug)

	loop := in.Tracer.Current()

	best := math.Inf(-1)
	n := 0
	wrapped := func(cfg element.Config) (float64, error) {
		esp := in.Prof.Start(prof.PhaseSearch)
		msp := loop.Child("measure")
		score, err := eval(cfg)
		msp.End()
		if err != nil {
			esp.End()
			return score, err
		}
		in.Prof.Add(prof.PhaseSearch, prof.AuxConfigsScored, 1)
		esp.End()
		evals.Inc()
		n++
		improved := score > best
		if improved {
			best = score
			bestGauge.Set(score)
			in.Health.ObserveSearchBest(score)
			if trajectory {
				in.Log.Debug("search: best improved",
					"searcher", name, "evaluation", n, "score", score)
			}
		}
		in.Flight.RecordDecision(uint64(n), score, improved, cfg)
		return score, nil
	}

	sp := obs.StartSpan(in.Obs, "search/"+name)
	lsp := loop.Phase("search")
	res, err := in.Searcher.Search(arr, wrapped, budget)
	lsp.End()
	wall := sp.End()

	if res != nil {
		in.Log.Info("search: finished",
			"searcher", name, "evaluations", res.Evaluations, "budget", budget,
			"best", res.BestScore, "exhausted", errors.Is(err, ErrBudgetExhausted),
			"wall", wall)
	} else if err != nil {
		in.Log.Error("search: failed", "searcher", name, "evaluations", n, "err", err)
	}
	return res, err
}
