package control

import (
	"errors"
	"math"

	"press/internal/element"
	"press/internal/obs"
)

// Instrumented wraps any Searcher with telemetry: a per-strategy span
// ("search/<name>") for wall-time, the evaluations-consumed counter and
// budget gauge, the best-objective gauge, and best-so-far trajectory
// events on the structured log — the measure→search loop visibility the
// controller needs to stay inside its coherence budget. With both Obs
// and Log nil the wrapper degrades to bare pass-through bookkeeping.
type Instrumented struct {
	Searcher Searcher
	Obs      *obs.Registry
	Log      *obs.Logger
}

// Instrument wraps s unless telemetry is fully disabled, in which case
// s itself is returned and no overhead is added.
func Instrument(s Searcher, reg *obs.Registry, log *obs.Logger) Searcher {
	if reg == nil && log == nil {
		return s
	}
	return Instrumented{Searcher: s, Obs: reg, Log: log}
}

// Name implements Searcher.
func (in Instrumented) Name() string { return in.Searcher.Name() }

// Search implements Searcher: it runs the wrapped strategy with an
// observed EvalFunc, mirroring exactly what tracker.measure sees (every
// successful evaluation, in order), and records the run's wall time.
func (in Instrumented) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	name := in.Searcher.Name()
	in.Obs.Counter("search_runs_total").Inc()
	in.Obs.Gauge("search_budget").Set(float64(budget))
	evals := in.Obs.Counter("search_evaluations_total")
	bestGauge := in.Obs.Gauge("search_best_objective")
	trajectory := in.Log.Enabled(obs.LevelDebug)

	best := math.Inf(-1)
	n := 0
	wrapped := func(cfg element.Config) (float64, error) {
		score, err := eval(cfg)
		if err != nil {
			return score, err
		}
		evals.Inc()
		n++
		if score > best {
			best = score
			bestGauge.Set(score)
			if trajectory {
				in.Log.Debug("search: best improved",
					"searcher", name, "evaluation", n, "score", score)
			}
		}
		return score, nil
	}

	sp := obs.StartSpan(in.Obs, "search/"+name)
	res, err := in.Searcher.Search(arr, wrapped, budget)
	wall := sp.End()

	if res != nil {
		in.Log.Info("search: finished",
			"searcher", name, "evaluations", res.Evaluations, "budget", budget,
			"best", res.BestScore, "exhausted", errors.Is(err, ErrBudgetExhausted),
			"wall", wall)
	} else if err != nil {
		in.Log.Error("search: failed", "searcher", name, "evaluations", n, "err", err)
	}
	return res, err
}
