package ofdm

import (
	"fmt"
	"math"
	"math/cmplx"

	"press/internal/rfphys"
)

// CSI is the receiver's view of one wireless channel: the least-squares
// channel estimate and per-subcarrier SNR, the quantities every figure in
// the paper is computed from.
type CSI struct {
	Grid Grid
	// H is the complex channel estimate per used subcarrier.
	H []complex128
	// SNRdB is the estimated per-subcarrier SNR in dB.
	SNRdB []float64
	// NoisePowerW is the estimated (or known) noise power per subcarrier.
	NoisePowerW float64
}

// Estimate performs least-squares channel estimation from received
// training observations. rx[s][k] is the received sample of training
// symbol s on used subcarrier k; tx[k] is the known training symbol
// (shared across repetitions); txPowerW is the transmit power allocated
// to each subcarrier; noiseW is the per-subcarrier noise power at the
// receiver (known from the radio's noise figure, as on a calibrated SDR).
//
// With S ≥ 2 training symbols the estimator also measures the noise
// empirically from the spread of the per-symbol estimates and uses the
// larger of measured and nominal noise — mirroring how an SDR pipeline's
// effective noise floor includes estimation error.
func Estimate(g Grid, rx [][]complex128, tx []complex128, txPowerW, noiseW float64) (*CSI, error) {
	if len(rx) == 0 {
		return nil, fmt.Errorf("ofdm: no training symbols received")
	}
	n := g.NumUsed()
	if len(tx) != n {
		return nil, fmt.Errorf("ofdm: training sequence has %d entries for %d subcarriers", len(tx), n)
	}
	for s := range rx {
		if len(rx[s]) != n {
			return nil, fmt.Errorf("ofdm: training symbol %d has %d entries for %d subcarriers", s, len(rx[s]), n)
		}
	}
	if txPowerW <= 0 {
		return nil, fmt.Errorf("ofdm: non-positive per-subcarrier transmit power")
	}

	csi := &CSI{Grid: g, H: make([]complex128, n), SNRdB: make([]float64, n), NoisePowerW: noiseW}
	amp := complex(math.Sqrt(txPowerW), 0)

	var residual float64 // accumulated |deviation|² across symbols & subcarriers
	var residualN int
	for k := 0; k < n; k++ {
		// LS estimate: average Y/(amp·X) across training repetitions.
		var sum complex128
		for s := range rx {
			sum += rx[s][k] / (amp * tx[k])
		}
		h := sum / complex(float64(len(rx)), 0)
		csi.H[k] = h
		for s := range rx {
			dev := rx[s][k]/(amp*tx[k]) - h
			residual += real(dev)*real(dev) + imag(dev)*imag(dev)
			residualN++
		}
	}

	// Empirical per-subcarrier noise (deviation of Y/X has variance
	// noise/txPower; scale back). Only meaningful with ≥2 repetitions.
	effNoise := noiseW
	if len(rx) >= 2 && residualN > 0 {
		measured := residual / float64(residualN) * txPowerW *
			float64(len(rx)) / float64(len(rx)-1) // unbiased
		if measured > effNoise {
			effNoise = measured
		}
	}
	if effNoise <= 0 {
		return nil, fmt.Errorf("ofdm: non-positive noise power")
	}
	csi.NoisePowerW = effNoise

	// Averaging S symbols reduces estimation noise on H by S; the SNR we
	// report is the per-symbol link SNR |H|²·P/N, the paper's quantity.
	for k := 0; k < n; k++ {
		mag2 := real(csi.H[k])*real(csi.H[k]) + imag(csi.H[k])*imag(csi.H[k])
		csi.SNRdB[k] = rfphys.LinearToDB(mag2 * txPowerW / effNoise)
	}
	return csi, nil
}

// GainDB returns the per-subcarrier channel magnitude in dB.
func (c *CSI) GainDB() []float64 {
	out := make([]float64, len(c.H))
	for i, h := range c.H {
		out[i] = rfphys.AmplitudeToDB(cmplx.Abs(h))
	}
	return out
}

// MinSNRdB returns the worst subcarrier SNR — Figure 6's headline metric.
func (c *CSI) MinSNRdB() float64 {
	if len(c.SNRdB) == 0 {
		return math.Inf(-1)
	}
	worst := c.SNRdB[0]
	for _, s := range c.SNRdB[1:] {
		if s < worst {
			worst = s
		}
	}
	return worst
}
