package ofdm

import (
	"math"

	"press/internal/rfphys"
)

// MCS is one modulation-and-coding scheme of the 802.11a/g-style rate
// ladder the paper's "greater bit rate, and hence throughput" argument
// (§1) appeals to.
type MCS struct {
	Name string
	// BitsPerSubcarrier is modulation bits × coding rate.
	BitsPerSubcarrier float64
	// MinSNRdB is the SNR needed for a near-zero packet error rate.
	MinSNRdB float64
}

// RateTable is the 802.11a/g ladder with textbook SNR thresholds.
var RateTable = []MCS{
	{"BPSK 1/2", 0.5, 5},
	{"BPSK 3/4", 0.75, 8},
	{"QPSK 1/2", 1.0, 10},
	{"QPSK 3/4", 1.5, 13},
	{"16-QAM 1/2", 2.0, 16},
	{"16-QAM 3/4", 3.0, 19},
	{"64-QAM 2/3", 4.0, 24},
	{"64-QAM 3/4", 4.5, 27},
}

// SelectMCS returns the fastest MCS whose threshold the given effective
// SNR clears, and ok=false when even the lowest rate cannot be sustained.
func SelectMCS(effSNRdB float64) (MCS, bool) {
	var best MCS
	found := false
	for _, m := range RateTable {
		if effSNRdB >= m.MinSNRdB {
			best, found = m, true
		}
	}
	return best, found
}

// EffectiveSNRdB reduces a per-subcarrier SNR vector to the scalar that
// drives rate selection. OFDM with coding is dominated by its weak
// subcarriers, so we use the standard log-domain exponential-effective-SNR
// style compromise: the mean of the worst quartile, in dB. A channel with
// one deep null therefore pays for it — exactly the mechanism that makes
// the paper's null-shifting valuable to higher layers.
func EffectiveSNRdB(snrDB []float64) float64 {
	if len(snrDB) == 0 {
		return math.Inf(-1)
	}
	sorted := append([]float64(nil), snrDB...)
	// insertion sort: vectors are ≤ ~100 entries
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	q := len(sorted) / 4
	if q == 0 {
		q = 1
	}
	var sum float64
	for _, s := range sorted[:q] {
		sum += s
	}
	return sum / float64(q)
}

// ThroughputMbps estimates link throughput for a per-subcarrier SNR
// vector: MCS selected from the effective SNR, carried on every used
// subcarrier at the grid's symbol rate (spacing⁻¹ symbol duration with a
// 1/4 guard interval, the 802.11 timing). Returns 0 when no rate is
// sustainable.
func ThroughputMbps(g Grid, snrDB []float64) float64 {
	m, ok := SelectMCS(EffectiveSNRdB(snrDB))
	if !ok {
		return 0
	}
	symbolRate := g.SpacingHz / 1.25 // guard interval overhead
	return m.BitsPerSubcarrier * symbolRate * float64(g.NumUsed()) / 1e6
}

// ShannonMbps returns the Shannon-capacity upper bound Σ log2(1+SNR_k)
// across subcarriers at the grid's symbol rate — the baseline the MCS
// ladder is compared against in the ablation benches.
func ShannonMbps(g Grid, snrDB []float64) float64 {
	symbolRate := g.SpacingHz / 1.25
	var bits float64
	for _, s := range snrDB {
		bits += math.Log2(1 + rfphys.DBToLinear(s))
	}
	return bits * symbolRate / 1e6
}
