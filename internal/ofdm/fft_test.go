package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randComplex(rng, n)
		want := dftNaive(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*(1+cmplx.Abs(want[k])) {
				t.Fatalf("n=%d bin %d: FFT %v vs DFT %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{2, 16, 64, 512} {
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		if err := FFT(y); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(y); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-10 {
				t.Fatalf("n=%d sample %d: round trip %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	x := randComplex(rng, 128)
	var eTime float64
	for _, v := range x {
		eTime += real(v)*real(v) + imag(v)*imag(v)
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	var eFreq float64
	for _, v := range y {
		eFreq += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(eFreq/float64(len(x))-eTime) > 1e-9*eTime {
		t.Errorf("Parseval violated: time %v, freq/N %v", eTime, eFreq/float64(len(x)))
	}
}

func TestFFTKnownValues(t *testing.T) {
	// Impulse transforms to all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", k, v)
		}
	}
	// A single tone lands in exactly one bin.
	n := 64
	tone := make([]complex128, n)
	for i := range tone {
		tone[i] = cmplx.Exp(complex(0, 2*math.Pi*5*float64(i)/float64(n)))
	}
	if err := FFT(tone); err != nil {
		t.Fatal(err)
	}
	for k, v := range tone {
		want := 0.0
		if k == 5 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("tone bin %d magnitude %v, want %v", k, cmplx.Abs(v), want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 52, 100} {
		if err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT accepted length %d", n)
		}
	}
}

func TestSynthesizeAnalyzeRoundTrip(t *testing.T) {
	g := WiFi20()
	rng := rand.New(rand.NewPCG(7, 8))
	syms := randComplex(rng, g.NumUsed())
	td, err := WiFiWaveform.Synthesize(g, syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(td) != 80 {
		t.Fatalf("symbol length %d, want 80 (64+16 CP)", len(td))
	}
	back, err := WiFiWaveform.Analyze(g, td)
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if cmplx.Abs(back[i]-syms[i]) > 1e-10 {
			t.Fatalf("subcarrier %d: %v vs %v", i, back[i], syms[i])
		}
	}
}

func TestCyclicPrefixIsCyclic(t *testing.T) {
	g := WiFi20()
	rng := rand.New(rand.NewPCG(9, 10))
	td, err := WiFiWaveform.Synthesize(g, randComplex(rng, g.NumUsed()))
	if err != nil {
		t.Fatal(err)
	}
	// The first CP samples repeat the last CP samples.
	for i := 0; i < WiFiWaveform.CP; i++ {
		if td[i] != td[WiFiWaveform.NFFT+i] {
			t.Fatalf("CP sample %d does not match symbol tail", i)
		}
	}
}

func TestDelayWithinCPIsPhaseRamp(t *testing.T) {
	// The reason OFDM tolerates multipath: a channel delay shorter than
	// the CP appears per-subcarrier as a pure phase rotation — the
	// frequency-domain model the whole measurement pipeline uses.
	g := WiFi20()
	rng := rand.New(rand.NewPCG(11, 12))
	syms := randComplex(rng, g.NumUsed())
	td, err := WiFiWaveform.Synthesize(g, syms)
	if err != nil {
		t.Fatal(err)
	}
	// Delay by d samples: the receiver's FFT window slides within the CP.
	const d = 5
	delayed := make([]complex128, len(td))
	copy(delayed[d:], td[:len(td)-d])
	// Fill the head from the previous "symbol" — using the same symbol's
	// tail keeps the circularity exact for the test.
	copy(delayed[:d], td[len(td)-d:])

	back, err := WiFiWaveform.Analyze(g, delayed)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range g.Used {
		// Expected rotation: e^{-j2πkd/N}.
		rot := cmplx.Exp(complex(0, -2*math.Pi*float64(k*d)/float64(WiFiWaveform.NFFT)))
		want := syms[i] * rot
		if cmplx.Abs(back[i]-want) > 1e-9 {
			t.Fatalf("subcarrier offset %d: delayed symbol %v, want %v", k, back[i], want)
		}
	}
}

func TestSynthesizeValidation(t *testing.T) {
	g := WiFi20()
	if _, err := WiFiWaveform.Synthesize(g, make([]complex128, 10)); err == nil {
		t.Error("wrong symbol count accepted")
	}
	bad := Waveform{NFFT: 48, CP: 8}
	if _, err := bad.Synthesize(g, make([]complex128, g.NumUsed())); err == nil {
		t.Error("non-power-of-two NFFT accepted")
	}
	tight := Waveform{NFFT: 64, CP: 70}
	if _, err := tight.Synthesize(g, make([]complex128, g.NumUsed())); err == nil {
		t.Error("CP >= NFFT accepted")
	}
	usrp := USRP102()
	if _, err := WiFiWaveform.Synthesize(usrp, make([]complex128, usrp.NumUsed())); err == nil {
		t.Error("102 used subcarriers cannot fit a 64-point FFT")
	}
	if _, err := WiFiWaveform.Analyze(g, make([]complex128, 5)); err == nil {
		t.Error("short sample count accepted")
	}
}

func BenchmarkFFT64(b *testing.B) {
	rng := rand.New(rand.NewPCG(13, 14))
	x := randComplex(rng, 64)
	buf := make([]complex128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		_ = FFT(buf)
	}
}
