package ofdm

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randomBits(rng *rand.Rand, n int) []uint8 {
	bits := make([]uint8, n)
	for i := range bits {
		bits[i] = uint8(rng.IntN(2))
	}
	return bits
}

func TestModulateRoundTripNoiseless(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bits := randomBits(rng, 240*m.BitsPerSymbol())
		syms, err := Modulate(m, bits)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		back, err := Demodulate(m, syms)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		errs, err := CountBitErrors(bits, back)
		if err != nil {
			t.Fatal(err)
		}
		if errs != 0 {
			t.Errorf("%v: %d bit errors without noise", m, errs)
		}
	}
}

func TestModulateUnitEnergy(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bits := randomBits(rng, 6000*m.BitsPerSymbol())
		syms, err := Modulate(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for _, s := range syms {
			e += real(s)*real(s) + imag(s)*imag(s)
		}
		e /= float64(len(syms))
		if math.Abs(e-1) > 0.05 {
			t.Errorf("%v: average symbol energy %v, want ≈1", m, e)
		}
	}
}

func TestModulateValidation(t *testing.T) {
	if _, err := Modulate(QPSK, []uint8{1}); err == nil {
		t.Error("odd bit count accepted for QPSK")
	}
	if _, err := Modulate(QPSK, []uint8{1, 7}); err == nil {
		t.Error("non-binary bit accepted")
	}
	if _, err := Modulate(Modulation(99), []uint8{1}); err == nil {
		t.Error("unknown modulation accepted")
	}
	if _, err := Demodulate(Modulation(99), nil); err == nil {
		t.Error("unknown modulation accepted in demod")
	}
	if _, err := CountBitErrors([]uint8{1}, []uint8{1, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// awgnBER simulates transmission through AWGN at the given per-symbol
// SNR and returns the measured bit error rate.
func awgnBER(t *testing.T, m Modulation, snrLinear float64, nBits int, seed uint64) float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	bits := randomBits(rng, nBits-nBits%m.BitsPerSymbol())
	syms, err := Modulate(m, bits)
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(1 / snrLinear / 2)
	rx := make([]complex128, len(syms))
	for i, s := range syms {
		rx[i] = s + complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	back, err := Demodulate(m, rx)
	if err != nil {
		t.Fatal(err)
	}
	errs, _ := CountBitErrors(bits, back)
	return float64(errs) / float64(len(bits))
}

func TestBPSKBERMatchesTheory(t *testing.T) {
	// BPSK over AWGN: BER = Q(√(2·SNR)). At SNR 4 (6 dB): Q(2.83) ≈ 2.3e-3.
	ber := awgnBER(t, BPSK, 4, 400000, 7)
	if ber < 5e-4 || ber > 8e-3 {
		t.Errorf("BPSK BER at 6 dB = %v, theory ≈2.3e-3", ber)
	}
}

func TestBERDecreasesWithSNR(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16} {
		low := awgnBER(t, m, 2, 60000, 11)
		high := awgnBER(t, m, 20, 60000, 12)
		if high >= low {
			t.Errorf("%v: BER did not fall with SNR: %v → %v", m, low, high)
		}
	}
}

func TestDenserConstellationsNeedMoreSNR(t *testing.T) {
	// At a fixed 12 dB SNR, BER orders by constellation density.
	snr := math.Pow(10, 1.2)
	bpsk := awgnBER(t, BPSK, snr, 120000, 21)
	qam16 := awgnBER(t, QAM16, snr, 120000, 22)
	qam64 := awgnBER(t, QAM64, snr, 120000, 23)
	if !(bpsk < qam16 && qam16 < qam64) {
		t.Errorf("BER ordering violated: BPSK %v, 16-QAM %v, 64-QAM %v", bpsk, qam16, qam64)
	}
}

func TestGrayMappingSingleBitNeighbours(t *testing.T) {
	// Gray mapping: adjacent constellation points along one axis differ
	// in exactly one bit — the property that keeps BER ≈ SER/bits.
	for _, m := range []Modulation{QAM16, QAM64} {
		k := m.axisBits()
		levels := pamLevels(k)
		// Invert: position j (sorted amplitude) → gray value.
		type lv struct {
			amp float64
			g   int
		}
		sorted := make([]lv, len(levels))
		for g, amp := range levels {
			sorted[int(amp+float64(len(levels)-1))/2] = lv{amp, g}
		}
		for j := 1; j < len(sorted); j++ {
			diff := sorted[j].g ^ sorted[j-1].g
			if diff&(diff-1) != 0 {
				t.Errorf("%v: neighbours %v and %v differ in >1 bit", m, sorted[j-1], sorted[j])
			}
		}
	}
}

func TestModulationStrings(t *testing.T) {
	if QAM64.String() != "64-QAM" || Modulation(9).String() != "modulation(9)" {
		t.Error("modulation names wrong")
	}
	if QAM64.BitsPerSymbol() != 6 || Modulation(9).BitsPerSymbol() != 0 {
		t.Error("bits per symbol wrong")
	}
}
