package ofdm

// TrainingSequence returns the known BPSK symbols (+1/−1) the transmitter
// sends on each used subcarrier of the grid for channel estimation — the
// role of the long training sequence in an 802.11 preamble. The pattern
// is a fixed pseudo-random ±1 sequence (a small LFSR), identical at
// transmitter and receiver, so frames are self-describing without any
// shared RNG state.
func TrainingSequence(g Grid) []complex128 {
	seq := make([]complex128, g.NumUsed())
	// 7-bit LFSR (x^7 + x^3 + 1), the scrambler polynomial 802.11 uses,
	// seeded non-zero.
	state := uint8(0x5D)
	for i := range seq {
		bit := ((state >> 6) ^ (state >> 2)) & 1
		state = (state << 1) | bit
		if bit == 1 {
			seq[i] = 1
		} else {
			seq[i] = -1
		}
	}
	return seq
}

// Frame is one OFDM frame in the frequency domain: a handful of known
// training symbols followed by payload symbols. The exploratory study
// only needs training (the receiver estimates CSI from it, §3.2), but
// payload symbols let throughput examples modulate real data.
type Frame struct {
	Grid Grid
	// Training holds NumTraining repetitions of the training sequence
	// (one slice per OFDM symbol, one entry per used subcarrier).
	Training [][]complex128
	// Payload holds the data symbols, same shape.
	Payload [][]complex128
}

// NewFrame assembles a frame with nTraining training symbols and the
// given payload symbols (may be nil for a sounding-only frame, which is
// all the paper's experiments transmit).
func NewFrame(g Grid, nTraining int, payload [][]complex128) *Frame {
	if nTraining < 1 {
		nTraining = 1
	}
	seq := TrainingSequence(g)
	tr := make([][]complex128, nTraining)
	for i := range tr {
		tr[i] = append([]complex128(nil), seq...)
	}
	return &Frame{Grid: g, Training: tr, Payload: payload}
}

// NumSymbols returns the total OFDM symbol count of the frame.
func (f *Frame) NumSymbols() int { return len(f.Training) + len(f.Payload) }
