package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"press/internal/propagation"
)

// TestFrequencyDomainModelMatchesTimeDomainDSP cross-validates the
// simulator's central shortcut. Everywhere else the channel is applied
// per subcarrier as Y_k = H(f_k)·X_k, with H from propagation.ResponseAt.
// Here we instead run the actual DSP a radio performs: synthesize the
// time-domain OFDM symbol, convolve it with the channel's baseband
// impulse response, strip the cyclic prefix, FFT, and compare the
// recovered per-subcarrier ratios against H(f_k).
//
// With path delays on exact sample ticks the impulse response is a set
// of delta taps and the equivalence must hold to near machine precision.
func TestFrequencyDomainModelMatchesTimeDomainDSP(t *testing.T) {
	g := WiFi20()
	w := WiFiWaveform
	fs := 20e6 // 64 × 312.5 kHz
	fc := g.CenterHz
	rng := rand.New(rand.NewPCG(42, 43))

	// Multipath with delays at integer sample ticks, all inside the CP.
	type tap struct {
		gain  complex128
		delay float64
	}
	taps := []tap{
		{complex(1e-3, 2e-4), 2 / fs},
		{complex(-4e-4, 3e-4), 7 / fs},
		{complex(2e-4, -5e-4), 13 / fs},
	}
	var paths []propagation.Path
	for _, tp := range taps {
		paths = append(paths, propagation.Path{Gain: tp.gain, Delay: tp.delay})
	}

	// Baseband impulse response: h[n] = Σ g_l·e^{-j2πfcτ_l}·δ[n − τ_l·fs].
	h := make([]complex128, w.CP)
	for _, tp := range taps {
		n := int(math.Round(tp.delay * fs))
		h[n] += tp.gain * cmplx.Exp(complex(0, -2*math.Pi*fc*tp.delay))
	}

	// Random QPSK-ish payload on the used subcarriers.
	x := make([]complex128, g.NumUsed())
	for i := range x {
		x[i] = complex(float64(1-2*rng.IntN(2)), float64(1-2*rng.IntN(2)))
	}
	td, err := w.Synthesize(g, x)
	if err != nil {
		t.Fatal(err)
	}

	// Linear convolution. Because every tap delay is below the CP length,
	// the FFT window sees the circular convolution of the symbol body.
	rxTD := make([]complex128, len(td))
	for n := range td {
		var acc complex128
		for m, hm := range h {
			if hm == 0 || n-m < 0 {
				continue
			}
			acc += hm * td[n-m]
		}
		rxTD[n] = acc
	}

	got, err := w.Analyze(g, rxTD)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range g.Used {
		want := propagation.ResponseAt(paths, fc+float64(k)*g.SpacingHz, 0)
		ratio := got[i] / x[i]
		// The frequency-domain model evaluates e^{-j2πfτ} at the absolute
		// subcarrier frequency; the DSP realizes exactly that through the
		// baseband mixing term. Tolerances cover accumulated FFT roundoff.
		if cmplx.Abs(ratio-want) > 1e-9*(1+cmplx.Abs(want)) {
			t.Fatalf("subcarrier offset %d: DSP H=%v, model H=%v", k, ratio, want)
		}
	}
}

// TestTimeDomainDelayBeyondCPBreaksOrthogonality documents the limit of
// the frequency-domain model: a path longer than the cyclic prefix
// spills inter-symbol interference into the FFT window, and the per-
// subcarrier model stops matching — the reason Waveform.CP exists.
func TestTimeDomainDelayBeyondCPBreaksOrthogonality(t *testing.T) {
	g := WiFi20()
	w := WiFiWaveform
	rng := rand.New(rand.NewPCG(44, 45))

	x := make([]complex128, g.NumUsed())
	for i := range x {
		x[i] = complex(float64(1-2*rng.IntN(2)), 0)
	}
	td, err := w.Synthesize(g, x)
	if err != nil {
		t.Fatal(err)
	}
	// Two taps: one at zero and one 24 samples out — beyond the 16-sample
	// CP. Zero-pad the head (no previous symbol): the long tap's energy
	// enters the window misaligned.
	delay := 24
	rxTD := make([]complex128, len(td))
	for n := range td {
		acc := td[n] // tap at 0, unit gain
		if n-delay >= 0 {
			acc += 0.9 * td[n-delay]
		}
		rxTD[n] = acc
	}
	got, err := w.Analyze(g, rxTD)
	if err != nil {
		t.Fatal(err)
	}
	// The circular model would predict H_k = 1 + 0.9·e^{-j2πk·24/64};
	// with the CP violated the recovered ratios must deviate noticeably
	// on at least some subcarriers.
	var worst float64
	for i, k := range g.Used {
		pred := 1 + 0.9*cmplx.Exp(complex(0, -2*math.Pi*float64(k*delay)/float64(w.NFFT)))
		if d := cmplx.Abs(got[i]/x[i] - pred); d > worst {
			worst = d
		}
	}
	if worst < 0.05 {
		t.Errorf("CP violation went unnoticed (worst deviation %v); the guard has no teeth", worst)
	}
}
