// Package ofdm provides the OFDM physical-layer pieces the measurement
// pipeline needs: subcarrier grids (the 64-subcarrier/20 MHz Wi-Fi-like
// signal of the paper's WARP experiments and the 102-subcarrier USRP
// variant of §3.2.2), training sequences, least-squares channel
// estimation, per-subcarrier SNR extraction, and SNR→bit-rate mapping.
package ofdm

import "fmt"

// Grid is an OFDM subcarrier layout on a carrier.
type Grid struct {
	// CenterHz is the carrier center frequency.
	CenterHz float64
	// SpacingHz is the subcarrier spacing.
	SpacingHz float64
	// Used lists the used (data+pilot) subcarrier offsets relative to the
	// center, in ascending order; guards and DC are simply absent.
	Used []int
}

// WiFi20 returns the paper's primary signal: "Wi-Fi-like OFDM signals
// comprised of 64 subcarriers over 20 MHz on channel 11 of the ISM band
// (2.462 GHz)". 52 subcarriers carry energy (offsets ±1..±26, DC and
// guards unused), with the standard 312.5 kHz spacing.
func WiFi20() Grid {
	used := make([]int, 0, 52)
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		used = append(used, k)
	}
	return Grid{CenterHz: 2.462e9, SpacingHz: 312.5e3, Used: used}
}

// USRP102 returns the 102-used-subcarrier grid of the §3.2.2 network
// harmonization experiment (USRP N210, 25 MS/s front end; Figure 7 plots
// subcarriers 1..102). Offsets ±1..±51 around a 2.45 GHz carrier.
func USRP102() Grid {
	used := make([]int, 0, 102)
	for k := -51; k <= 51; k++ {
		if k == 0 {
			continue
		}
		used = append(used, k)
	}
	return Grid{CenterHz: 2.45e9, SpacingHz: 195.3125e3, Used: used}
}

// NumUsed returns the number of used subcarriers.
func (g Grid) NumUsed() int { return len(g.Used) }

// Frequencies returns the absolute frequency of every used subcarrier, in
// the order of Used — the grid the channel response is evaluated on.
func (g Grid) Frequencies() []float64 {
	out := make([]float64, len(g.Used))
	for i, k := range g.Used {
		out[i] = g.CenterHz + float64(k)*g.SpacingHz
	}
	return out
}

// BandwidthHz returns the occupied bandwidth (outermost used subcarrier
// span plus one spacing).
func (g Grid) BandwidthHz() float64 {
	if len(g.Used) == 0 {
		return 0
	}
	return float64(g.Used[len(g.Used)-1]-g.Used[0]+1) * g.SpacingHz
}

// Validate checks the grid's invariants: positive spacing and center,
// strictly ascending used list.
func (g Grid) Validate() error {
	if g.CenterHz <= 0 || g.SpacingHz <= 0 {
		return fmt.Errorf("ofdm: non-positive center or spacing")
	}
	if len(g.Used) == 0 {
		return fmt.Errorf("ofdm: no used subcarriers")
	}
	for i := 1; i < len(g.Used); i++ {
		if g.Used[i] <= g.Used[i-1] {
			return fmt.Errorf("ofdm: Used not strictly ascending at %d", i)
		}
	}
	return nil
}

// SubcarrierIndex maps a used-subcarrier position (0-based, the paper's
// plotting convention) back to its frequency offset.
func (g Grid) SubcarrierIndex(pos int) (offset int, err error) {
	if pos < 0 || pos >= len(g.Used) {
		return 0, fmt.Errorf("ofdm: subcarrier position %d out of range [0,%d)", pos, len(g.Used))
	}
	return g.Used[pos], nil
}
