package ofdm

import (
	"fmt"

	"press/internal/rfphys"
)

// SINRdB computes the per-subcarrier signal-to-interference-plus-noise
// ratio of a desired link in the presence of concurrent interfering
// transmissions — the quantity behind the paper's Figure 2: network
// harmonization wants communication channels strong and interference
// channels weak on each half of the band.
//
// signal is the CSI of the desired TX→RX link; each interferer is the
// CSI of an interfering TX measured at the *same* receiver (so its SNR
// entries already express received interference power over the noise
// floor). All CSIs must share the subcarrier count; interferers are
// assumed noise-like (no cancellation), the standard worst case.
func SINRdB(signal *CSI, interferers []*CSI) ([]float64, error) {
	n := len(signal.SNRdB)
	for idx, it := range interferers {
		if len(it.SNRdB) != n {
			return nil, fmt.Errorf("ofdm: interferer %d has %d subcarriers, want %d", idx, len(it.SNRdB), n)
		}
	}
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		s := rfphys.DBToLinear(signal.SNRdB[k])
		denom := 1.0 // the noise itself, in noise units
		for _, it := range interferers {
			denom += rfphys.DBToLinear(it.SNRdB[k])
		}
		out[k] = rfphys.LinearToDB(s / denom)
	}
	return out, nil
}

// SubbandThroughputMbps estimates the throughput of a link restricted to
// the subcarrier range [lo, hi) of grid g, at the given per-subcarrier
// SINR — the per-network rate after a harmonized frequency split.
func SubbandThroughputMbps(g Grid, sinrDB []float64, lo, hi int) (float64, error) {
	if lo < 0 || hi > len(sinrDB) || lo >= hi {
		return 0, fmt.Errorf("ofdm: subband [%d,%d) invalid for %d subcarriers", lo, hi, len(sinrDB))
	}
	m, ok := SelectMCS(EffectiveSNRdB(sinrDB[lo:hi]))
	if !ok {
		return 0, nil
	}
	symbolRate := g.SpacingHz / 1.25
	return m.BitsPerSubcarrier * symbolRate * float64(hi-lo) / 1e6, nil
}
