package ofdm

import "press/internal/obs/prof"

// EstimateProf is Estimate with estimate-phase work accounting: the
// least-squares solve is timed under prof.PhaseEstimate and the
// subcarrier count accumulated. A nil collector is exactly Estimate.
func EstimateProf(c *prof.Collector, g Grid, rx [][]complex128, tx []complex128, txPowerW, noiseW float64) (*CSI, error) {
	if c == nil {
		return Estimate(g, rx, tx, txPowerW, noiseW)
	}
	sp := c.Start(prof.PhaseEstimate)
	csi, err := Estimate(g, rx, tx, txPowerW, noiseW)
	if err == nil {
		c.Add(prof.PhaseEstimate, prof.AuxSubcarriers, int64(g.NumUsed()))
	}
	sp.End()
	return csi, err
}
