package ofdm

import (
	"fmt"
	"math"
)

// Modulation identifies a constellation of the 802.11a/g ladder.
type Modulation int

// Supported constellations.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns the bits carried per constellation point.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// axisBits returns the bits per I/Q axis (0 for BPSK's single axis).
func (m Modulation) axisBits() int {
	switch m {
	case QPSK:
		return 1
	case QAM16:
		return 2
	case QAM64:
		return 3
	default:
		return 0
	}
}

// pamLevels builds the Gray-mapped PAM amplitudes for k bits per axis:
// levels[g] is the amplitude transmitted for Gray-coded value g, with
// levels spaced 2 apart around zero (unnormalized).
func pamLevels(k int) []float64 {
	l := 1 << k
	levels := make([]float64, l)
	for j := 0; j < l; j++ {
		g := j ^ (j >> 1) // Gray code of position j
		levels[g] = float64(2*j - (l - 1))
	}
	return levels
}

// norm returns the scale factor giving unit average symbol energy.
func (m Modulation) norm() float64 {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return math.Sqrt2
	case QAM16:
		return math.Sqrt(10)
	case QAM64:
		return math.Sqrt(42)
	default:
		return 1
	}
}

// Modulate maps bits (one 0/1 per entry) onto constellation points with
// unit average energy. The bit count must be a multiple of
// BitsPerSymbol.
func Modulate(m Modulation, bits []uint8) ([]complex128, error) {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("ofdm: unsupported modulation %v", m)
	}
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("ofdm: %d bits not a multiple of %d", len(bits), bps)
	}
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("ofdm: bit %d is %d, want 0/1", i, b)
		}
	}
	out := make([]complex128, len(bits)/bps)
	if m == BPSK {
		for i := range out {
			if bits[i] == 1 {
				out[i] = 1
			} else {
				out[i] = -1
			}
		}
		return out, nil
	}
	k := m.axisBits()
	levels := pamLevels(k)
	scale := 1 / m.norm()
	for s := range out {
		chunk := bits[s*bps : (s+1)*bps]
		iVal := levels[bitsToUint(chunk[:k])]
		qVal := levels[bitsToUint(chunk[k:])]
		out[s] = complex(iVal*scale, qVal*scale)
	}
	return out, nil
}

// Demodulate performs hard-decision demodulation back to bits.
func Demodulate(m Modulation, syms []complex128) ([]uint8, error) {
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("ofdm: unsupported modulation %v", m)
	}
	out := make([]uint8, 0, len(syms)*bps)
	if m == BPSK {
		for _, s := range syms {
			if real(s) >= 0 {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
		return out, nil
	}
	k := m.axisBits()
	levels := pamLevels(k)
	scale := m.norm()
	for _, s := range syms {
		out = append(out, sliceAxis(real(s)*scale, levels, k)...)
		out = append(out, sliceAxis(imag(s)*scale, levels, k)...)
	}
	return out, nil
}

// sliceAxis hard-decides one PAM axis back to its Gray-coded bits.
func sliceAxis(v float64, levels []float64, k int) []uint8 {
	bestG, bestD := 0, math.Inf(1)
	for g, amp := range levels {
		if d := math.Abs(v - amp); d < bestD {
			bestG, bestD = g, d
		}
	}
	return uintToBits(uint(bestG), k)
}

// bitsToUint packs MSB-first bits.
func bitsToUint(bits []uint8) uint {
	var v uint
	for _, b := range bits {
		v = v<<1 | uint(b)
	}
	return v
}

// uintToBits unpacks MSB-first bits.
func uintToBits(v uint, k int) []uint8 {
	out := make([]uint8, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = uint8(v & 1)
		v >>= 1
	}
	return out
}

// CountBitErrors compares two equal-length bit slices.
func CountBitErrors(a, b []uint8) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("ofdm: bit lengths differ: %d vs %d", len(a), len(b))
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n, nil
}
