package ofdm

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x, whose length must be a power of two. The convention is
// the engineering DFT: X[k] = Σ_n x[n]·e^{-j2πkn/N}, no normalization.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("ofdm: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// IFFT computes the in-place inverse FFT with 1/N normalization, the
// exact inverse of FFT.
func IFFT(x []complex128) error {
	n := len(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// dftNaive is the O(N²) reference used by the tests.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			sum += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*t)/float64(n)))
		}
		out[k] = sum
	}
	return out
}
