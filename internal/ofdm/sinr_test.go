package ofdm

import (
	"math"
	"testing"
)

func csiFlat(n int, snrDB float64) *CSI {
	s := make([]float64, n)
	for i := range s {
		s[i] = snrDB
	}
	return &CSI{Grid: WiFi20(), SNRdB: s}
}

func TestSINRNoInterference(t *testing.T) {
	sig := csiFlat(52, 30)
	sinr, err := SINRdB(sig, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range sinr {
		if math.Abs(v-30) > 1e-9 {
			t.Fatalf("subcarrier %d: SINR %v without interference, want 30", k, v)
		}
	}
}

func TestSINREqualPowerInterferer(t *testing.T) {
	// Signal 30 dB, one interferer also 30 dB: SINR ≈ 0 dB
	// (interference dominates noise a thousandfold).
	sig := csiFlat(52, 30)
	sinr, err := SINRdB(sig, []*CSI{csiFlat(52, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sinr[0]-0) > 0.01 {
		t.Errorf("SINR = %v, want ≈0 dB", sinr[0])
	}
}

func TestSINRWeakInterferer(t *testing.T) {
	// Interference 20 dB below the noise floor changes nothing visible.
	sig := csiFlat(52, 30)
	sinr, err := SINRdB(sig, []*CSI{csiFlat(52, -20)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sinr[0]-30) > 0.05 {
		t.Errorf("SINR = %v, want ≈30 dB", sinr[0])
	}
}

func TestSINRMultipleInterferers(t *testing.T) {
	// Two equal interferers add 3 dB over one.
	sig := csiFlat(52, 40)
	one, err := SINRdB(sig, []*CSI{csiFlat(52, 20)})
	if err != nil {
		t.Fatal(err)
	}
	two, err := SINRdB(sig, []*CSI{csiFlat(52, 20), csiFlat(52, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if d := one[0] - two[0]; math.Abs(d-3) > 0.1 {
		t.Errorf("second interferer cost %v dB, want ≈3", d)
	}
}

func TestSINRShapeMismatch(t *testing.T) {
	if _, err := SINRdB(csiFlat(52, 30), []*CSI{csiFlat(10, 30)}); err == nil {
		t.Error("mismatched interferer accepted")
	}
}

func TestSINRHarmonizationPayoff(t *testing.T) {
	// The Figure 2 story in numbers: network A strong in the lower half,
	// the interferer strong in the upper half → A's lower-half SINR stays
	// high even while the whole-band SINR collapses.
	n := 52
	sig := make([]float64, n)
	intf := make([]float64, n)
	for k := 0; k < n; k++ {
		if k < n/2 {
			sig[k], intf[k] = 35, 5 // A's half: strong signal, weak interference
		} else {
			sig[k], intf[k] = 15, 35 // B's half
		}
	}
	sinr, err := SINRdB(&CSI{SNRdB: sig}, []*CSI{{SNRdB: intf}})
	if err != nil {
		t.Fatal(err)
	}
	lower := EffectiveSNRdB(sinr[:n/2])
	whole := EffectiveSNRdB(sinr)
	if lower < 25 {
		t.Errorf("harmonized half SINR = %v, want ≥25", lower)
	}
	if whole > lower-10 {
		t.Errorf("whole-band SINR %v should collapse relative to the clean half %v", whole, lower)
	}
}

func TestSubbandThroughput(t *testing.T) {
	g := WiFi20()
	sinr := make([]float64, 52)
	for i := range sinr {
		sinr[i] = 28
	}
	full, err := SubbandThroughputMbps(g, sinr, 0, 52)
	if err != nil {
		t.Fatal(err)
	}
	half, err := SubbandThroughputMbps(g, sinr, 0, 26)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-2*half) > 1e-9 {
		t.Errorf("half band (%v) should carry half of full band (%v)", half, full)
	}
	if _, err := SubbandThroughputMbps(g, sinr, 30, 10); err == nil {
		t.Error("inverted subband accepted")
	}
	if _, err := SubbandThroughputMbps(g, sinr, 0, 99); err == nil {
		t.Error("out-of-range subband accepted")
	}
	// Unusable SINR → zero rate, no error.
	bad := make([]float64, 52)
	for i := range bad {
		bad[i] = -3
	}
	if r, err := SubbandThroughputMbps(g, bad, 0, 52); err != nil || r != 0 {
		t.Errorf("unusable band → (%v,%v), want (0,nil)", r, err)
	}
}
