package ofdm

import "fmt"

// Waveform parameterizes the time-domain OFDM symbol: an NFFT-point
// transform with a cyclic prefix. The 802.11a/g numbers are NFFT 64,
// CP 16 (the paper's "Wi-Fi-like OFDM signals comprised of 64
// subcarriers").
type Waveform struct {
	NFFT int
	CP   int
}

// WiFiWaveform is the 802.11a/g symbol shape.
var WiFiWaveform = Waveform{NFFT: 64, CP: 16}

// SymbolLength returns the time-domain samples per OFDM symbol.
func (w Waveform) SymbolLength() int { return w.NFFT + w.CP }

// validate checks waveform sanity against a grid.
func (w Waveform) validate(g Grid) error {
	if w.NFFT <= 0 || w.NFFT&(w.NFFT-1) != 0 {
		return fmt.Errorf("ofdm: NFFT %d not a power of two", w.NFFT)
	}
	if w.CP < 0 || w.CP >= w.NFFT {
		return fmt.Errorf("ofdm: CP %d outside [0,%d)", w.CP, w.NFFT)
	}
	for _, k := range g.Used {
		if k <= -w.NFFT/2 || k >= w.NFFT/2 {
			return fmt.Errorf("ofdm: subcarrier offset %d outside ±%d", k, w.NFFT/2)
		}
	}
	return nil
}

// Synthesize builds one time-domain OFDM symbol (cyclic prefix included)
// from the frequency-domain symbols on the grid's used subcarriers.
// Unused bins are zero. The result has SymbolLength samples.
func (w Waveform) Synthesize(g Grid, symbols []complex128) ([]complex128, error) {
	if err := w.validate(g); err != nil {
		return nil, err
	}
	if len(symbols) != g.NumUsed() {
		return nil, fmt.Errorf("ofdm: %d symbols for %d used subcarriers", len(symbols), g.NumUsed())
	}
	bins := make([]complex128, w.NFFT)
	for i, k := range g.Used {
		idx := k
		if idx < 0 {
			idx += w.NFFT
		}
		bins[idx] = symbols[i]
	}
	if err := IFFT(bins); err != nil {
		return nil, err
	}
	out := make([]complex128, 0, w.SymbolLength())
	out = append(out, bins[w.NFFT-w.CP:]...) // cyclic prefix
	out = append(out, bins...)
	return out, nil
}

// Analyze recovers the used-subcarrier symbols from one time-domain OFDM
// symbol produced by Synthesize (or received over a channel shorter than
// the cyclic prefix).
func (w Waveform) Analyze(g Grid, samples []complex128) ([]complex128, error) {
	if err := w.validate(g); err != nil {
		return nil, err
	}
	if len(samples) != w.SymbolLength() {
		return nil, fmt.Errorf("ofdm: %d samples, want %d", len(samples), w.SymbolLength())
	}
	bins := append([]complex128(nil), samples[w.CP:]...)
	if err := FFT(bins); err != nil {
		return nil, err
	}
	out := make([]complex128, g.NumUsed())
	for i, k := range g.Used {
		idx := k
		if idx < 0 {
			idx += w.NFFT
		}
		out[i] = bins[idx]
	}
	return out, nil
}
