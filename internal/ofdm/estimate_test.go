package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"press/internal/rfphys"
)

// simulateRx synthesizes received training symbols Y = √P·H·X + noise.
func simulateRx(g Grid, h []complex128, tx []complex128, txPowerW, noiseW float64,
	nSym int, rng *rand.Rand) [][]complex128 {

	amp := complex(math.Sqrt(txPowerW), 0)
	sigma := math.Sqrt(noiseW / 2)
	rx := make([][]complex128, nSym)
	for s := range rx {
		rx[s] = make([]complex128, len(h))
		for k := range h {
			n := complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			rx[s][k] = amp*h[k]*tx[k] + n
		}
	}
	return rx
}

func flatChannel(n int, gain complex128) []complex128 {
	h := make([]complex128, n)
	for i := range h {
		h[i] = gain
	}
	return h
}

func TestEstimateNoiseless(t *testing.T) {
	g := WiFi20()
	tx := TrainingSequence(g)
	h := flatChannel(g.NumUsed(), complex(1e-3, 2e-3))
	rx := simulateRx(g, h, tx, 0.1, 0, 1, rand.New(rand.NewPCG(1, 1)))

	csi, err := Estimate(g, rx, tx, 0.1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for k := range h {
		if cmplx.Abs(csi.H[k]-h[k]) > 1e-12 {
			t.Fatalf("H[%d] = %v, want %v", k, csi.H[k], h[k])
		}
	}
}

func TestEstimateSNRMatchesTruth(t *testing.T) {
	g := WiFi20()
	tx := TrainingSequence(g)
	gain := 1e-4 // -80 dB channel
	txPower := 0.01
	noise := 1e-13
	trueSNR := rfphys.LinearToDB(gain * gain * txPower / noise) // ≈ 30 dB

	h := flatChannel(g.NumUsed(), complex(gain, 0))
	rng := rand.New(rand.NewPCG(2, 3))
	rx := simulateRx(g, h, tx, txPower, noise, 10, rng)
	csi, err := Estimate(g, rx, tx, txPower, noise)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range csi.SNRdB {
		if math.Abs(s-trueSNR) > 3 {
			t.Fatalf("SNR[%d] = %v dB, want ≈%v", k, s, trueSNR)
		}
	}
}

func TestEstimateMeasuresNoiseEmpirically(t *testing.T) {
	// Feed the estimator an optimistic nominal noise 20 dB below the
	// real one: with multiple training symbols it should notice.
	g := WiFi20()
	tx := TrainingSequence(g)
	h := flatChannel(g.NumUsed(), 1e-4)
	realNoise := 1e-12
	rng := rand.New(rand.NewPCG(4, 5))
	rx := simulateRx(g, h, tx, 0.01, realNoise, 20, rng)

	csi, err := Estimate(g, rx, tx, 0.01, realNoise/100)
	if err != nil {
		t.Fatal(err)
	}
	if csi.NoisePowerW < realNoise/3 || csi.NoisePowerW > realNoise*3 {
		t.Errorf("estimated noise %v, want within 5 dB of %v", csi.NoisePowerW, realNoise)
	}
}

func TestEstimateAveragingReducesError(t *testing.T) {
	g := WiFi20()
	tx := TrainingSequence(g)
	h := flatChannel(g.NumUsed(), 1e-4)
	txPower, noise := 0.01, 1e-11

	errFor := func(nSym int, seed uint64) float64 {
		rng := rand.New(rand.NewPCG(seed, seed))
		rx := simulateRx(g, h, tx, txPower, noise, nSym, rng)
		csi, err := Estimate(g, rx, tx, txPower, noise)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for k := range h {
			sum += cmplx.Abs(csi.H[k] - h[k])
		}
		return sum / float64(len(h))
	}
	// Average over several seeds to avoid a flaky comparison.
	var e1, e16 float64
	for seed := uint64(1); seed <= 8; seed++ {
		e1 += errFor(1, seed)
		e16 += errFor(16, seed)
	}
	if e16 >= e1 {
		t.Errorf("averaging 16 training symbols did not reduce error: %v vs %v", e16, e1)
	}
}

func TestEstimateInputValidation(t *testing.T) {
	g := WiFi20()
	tx := TrainingSequence(g)
	good := simulateRx(g, flatChannel(52, 1), tx, 1, 0, 1, rand.New(rand.NewPCG(1, 1)))

	if _, err := Estimate(g, nil, tx, 1, 1e-12); err == nil {
		t.Error("empty rx accepted")
	}
	if _, err := Estimate(g, good, tx[:10], 1, 1e-12); err == nil {
		t.Error("short training sequence accepted")
	}
	if _, err := Estimate(g, [][]complex128{good[0][:5]}, tx, 1, 1e-12); err == nil {
		t.Error("short rx symbol accepted")
	}
	if _, err := Estimate(g, good, tx, 0, 1e-12); err == nil {
		t.Error("zero tx power accepted")
	}
	if _, err := Estimate(g, good, tx, 1, 0); err == nil {
		t.Error("zero noise with single symbol accepted")
	}
}

func TestCSIGainAndMin(t *testing.T) {
	g := WiFi20()
	csi := &CSI{Grid: g, H: []complex128{0.1, 0.01}, SNRdB: []float64{40, 20}}
	gains := csi.GainDB()
	if math.Abs(gains[0]+20) > 1e-9 || math.Abs(gains[1]+40) > 1e-9 {
		t.Errorf("gains = %v", gains)
	}
	if csi.MinSNRdB() != 20 {
		t.Errorf("MinSNRdB = %v", csi.MinSNRdB())
	}
	empty := &CSI{}
	if !math.IsInf(empty.MinSNRdB(), -1) {
		t.Error("empty CSI MinSNRdB should be -Inf")
	}
}

func TestMCSSelection(t *testing.T) {
	if m, ok := SelectMCS(30); !ok || m.Name != "64-QAM 3/4" {
		t.Errorf("30 dB → %v", m.Name)
	}
	if m, ok := SelectMCS(11); !ok || m.Name != "QPSK 1/2" {
		t.Errorf("11 dB → %v", m.Name)
	}
	if _, ok := SelectMCS(2); ok {
		t.Error("2 dB should sustain no rate")
	}
}

func TestEffectiveSNRPunishesNulls(t *testing.T) {
	flat := make([]float64, 52)
	nulled := make([]float64, 52)
	for i := range flat {
		flat[i], nulled[i] = 30, 30
	}
	for i := 0; i < 6; i++ {
		nulled[10+i] = 5 // a 25 dB null across 6 subcarriers
	}
	if e := EffectiveSNRdB(flat); math.Abs(e-30) > 1e-9 {
		t.Errorf("flat effective SNR = %v", e)
	}
	if e := EffectiveSNRdB(nulled); e > 20 {
		t.Errorf("nulled effective SNR = %v, should drop well below 30", e)
	}
	if !math.IsInf(EffectiveSNRdB(nil), -1) {
		t.Error("empty SNR should be -Inf")
	}
}

func TestThroughputImprovesWhenNullRemoved(t *testing.T) {
	// The paper's §1 argument: flattening the channel lets OFDM "offer a
	// greater bit rate, and hence throughput, to higher layers".
	g := WiFi20()
	flat := make([]float64, 52)
	nulled := make([]float64, 52)
	for i := range flat {
		flat[i], nulled[i] = 28, 28
	}
	for i := 0; i < 8; i++ {
		nulled[20+i] = 4
	}
	tFlat := ThroughputMbps(g, flat)
	tNull := ThroughputMbps(g, nulled)
	if tFlat <= tNull {
		t.Errorf("flat channel throughput %v ≤ nulled %v", tFlat, tNull)
	}
	if tFlat == 0 {
		t.Error("flat 28 dB channel should sustain a rate")
	}
}

func TestShannonExceedsMCS(t *testing.T) {
	g := WiFi20()
	snr := make([]float64, 52)
	for i := range snr {
		snr[i] = 25
	}
	if ShannonMbps(g, snr) <= ThroughputMbps(g, snr) {
		t.Error("Shannon bound should exceed the MCS ladder")
	}
}
