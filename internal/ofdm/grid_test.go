package ofdm

import (
	"math"
	"testing"
)

func TestWiFi20Grid(t *testing.T) {
	g := WiFi20()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumUsed() != 52 {
		t.Errorf("used subcarriers = %d, want 52", g.NumUsed())
	}
	if g.CenterHz != 2.462e9 {
		t.Errorf("center = %v, want channel 11 (2.462 GHz)", g.CenterHz)
	}
	if g.SpacingHz != 312.5e3 {
		t.Errorf("spacing = %v, want 312.5 kHz", g.SpacingHz)
	}
	// DC is unused.
	for _, k := range g.Used {
		if k == 0 {
			t.Error("DC subcarrier should be unused")
		}
	}
	// Occupied band ≈ 16.5 MHz inside the 20 MHz channel.
	if bw := g.BandwidthHz(); bw < 16e6 || bw > 17e6 {
		t.Errorf("bandwidth = %v", bw)
	}
}

func TestUSRP102Grid(t *testing.T) {
	g := USRP102()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumUsed() != 102 {
		t.Errorf("used subcarriers = %d, want 102 (Figure 7's x-axis)", g.NumUsed())
	}
}

func TestFrequenciesAscending(t *testing.T) {
	g := WiFi20()
	fs := g.Frequencies()
	if len(fs) != 52 {
		t.Fatalf("len = %d", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatalf("frequencies not ascending at %d", i)
		}
	}
	// First used subcarrier: center - 26·spacing.
	want := 2.462e9 - 26*312.5e3
	if math.Abs(fs[0]-want) > 1 {
		t.Errorf("first frequency = %v, want %v", fs[0], want)
	}
	// The DC gap: offsets -1 and +1 are 2 spacings apart.
	mid := len(fs) / 2
	if gap := fs[mid] - fs[mid-1]; math.Abs(gap-2*312.5e3) > 1 {
		t.Errorf("DC gap = %v, want %v", gap, 2*312.5e3)
	}
}

func TestGridValidate(t *testing.T) {
	bad := Grid{CenterHz: 2.4e9, SpacingHz: 312.5e3, Used: []int{3, 2}}
	if bad.Validate() == nil {
		t.Error("descending Used accepted")
	}
	if (Grid{CenterHz: 2.4e9, SpacingHz: 0, Used: []int{1}}).Validate() == nil {
		t.Error("zero spacing accepted")
	}
	if (Grid{CenterHz: 2.4e9, SpacingHz: 1, Used: nil}).Validate() == nil {
		t.Error("empty grid accepted")
	}
}

func TestSubcarrierIndex(t *testing.T) {
	g := WiFi20()
	if off, err := g.SubcarrierIndex(0); err != nil || off != -26 {
		t.Errorf("position 0 → offset %d, err %v", off, err)
	}
	if off, err := g.SubcarrierIndex(51); err != nil || off != 26 {
		t.Errorf("position 51 → offset %d, err %v", off, err)
	}
	if _, err := g.SubcarrierIndex(52); err == nil {
		t.Error("out-of-range position accepted")
	}
}

func TestTrainingSequence(t *testing.T) {
	g := WiFi20()
	seq := TrainingSequence(g)
	if len(seq) != 52 {
		t.Fatalf("len = %d", len(seq))
	}
	var plus, minus int
	for _, s := range seq {
		switch s {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("non-BPSK training symbol %v", s)
		}
	}
	// Roughly balanced (LFSR output).
	if plus < 15 || minus < 15 {
		t.Errorf("unbalanced training: %d plus, %d minus", plus, minus)
	}
	// Deterministic.
	seq2 := TrainingSequence(g)
	for i := range seq {
		if seq[i] != seq2[i] {
			t.Fatal("training sequence not deterministic")
		}
	}
}

func TestNewFrame(t *testing.T) {
	g := WiFi20()
	f := NewFrame(g, 4, nil)
	if len(f.Training) != 4 || f.NumSymbols() != 4 {
		t.Errorf("frame has %d training symbols", len(f.Training))
	}
	// nTraining < 1 clamps to 1.
	if got := NewFrame(g, 0, nil); len(got.Training) != 1 {
		t.Errorf("clamped frame has %d training symbols", len(got.Training))
	}
	// Training symbols are copies, not aliases.
	f.Training[0][0] = 42
	if f.Training[1][0] == 42 {
		t.Error("training symbols alias each other")
	}
}
