package experiments

import (
	"reflect"
	"testing"

	"press/internal/obs/flight"
	"press/internal/obs/scope"
)

func TestRunSpecParamsRoundTrip(t *testing.T) {
	spec := RunSpec{
		Exp: "fig4,fig8", Seed: 99, Trials: 3, Placements: 4,
		Snapshots: 10, Reps: 2, Budget: 150,
	}
	man := &flight.Manifest{Binary: "pressim", Scenario: spec.Exp, Seed: spec.Seed}
	man.SetParams(spec.Params())
	got, err := SpecFromManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Errorf("round trip = %+v, want %+v", got, spec)
	}
}

func TestSpecFromManifestRejects(t *testing.T) {
	if _, err := SpecFromManifest(&flight.Manifest{Binary: "pressctl"}); err == nil {
		t.Error("non-pressim manifest accepted")
	}
	m := &flight.Manifest{Binary: "pressim"}
	if _, err := SpecFromManifest(m); err == nil {
		t.Error("manifest without params accepted")
	}
	m.SetParams([]flight.Param{
		{Key: "exp", Value: "fig4"}, {Key: "trials", Value: "x"},
		{Key: "placements", Value: "1"}, {Key: "snapshots", Value: "1"},
		{Key: "reps", Value: "1"}, {Key: "budget", Value: "1"},
	})
	if _, err := SpecFromManifest(m); err == nil {
		t.Error("non-integer trials accepted")
	}
}

func TestRunSpecExperiments(t *testing.T) {
	if got := (RunSpec{Exp: "all"}).Experiments(); !reflect.DeepEqual(got, AllExperiments) {
		t.Errorf("all = %v", got)
	}
	if got := (RunSpec{Exp: " fig4 , fig8 "}).Experiments(); !reflect.DeepEqual(got, []string{"fig4", "fig8"}) {
		t.Errorf("list = %v", got)
	}
}

func TestRunSpecUnknownExperiment(t *testing.T) {
	if err := (RunSpec{Exp: "bogus"}).Run(); err == nil {
		t.Error("unknown experiment ran without error")
	}
}

// TestRunSpecReplayDeterminism re-runs a small fig5 spec twice with the
// flight observer installed and checks the recorded CSI streams match
// bit for bit — the invariant `pressctl replay` is built on.
func TestRunSpecReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replay determinism run is slow")
	}
	spec := RunSpec{Exp: "fig5", Seed: 7, Trials: 1}
	record := func(dir string) *flight.Run {
		t.Helper()
		rec, err := flight.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		SetScope(scope.Adopt("", nil, nil, nil, rec, nil))
		defer SetScope(nil)
		if err := spec.Run(); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		run, err := flight.ReadRun(dir)
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a := record(t.TempDir() + "/a")
	b := record(t.TempDir() + "/b")
	if len(a.CSI) == 0 {
		t.Fatal("fig5 recorded no CSI samples")
	}
	if v := flight.Verify(a, b, 0); !v.OK() {
		t.Errorf("re-run diverged: %+v", v)
	}
}
