package experiments

import (
	"fmt"
	"io"

	"press/internal/radio"
	"press/internal/stats"
)

// Fig5Options parameterizes the Figure 5 reproduction (null movement).
type Fig5Options struct {
	// Seed selects the element placement; the paper investigates
	// placement (e) of Figure 4.
	Seed uint64
	// Trials is the number of experimental repetitions (one CCDF curve
	// each; the paper plots 10).
	Trials int
	// NullDepthDB is the qualification threshold (the paper's 5 dB).
	NullDepthDB float64
}

// DefaultFig5 matches the paper: placement (e) — seed index 4 of the
// Figure 4 run (BaseSeed 438 + 4) — 10 trials, 5 dB null threshold.
func DefaultFig5() Fig5Options {
	return Fig5Options{Seed: 442, Trials: 10, NullDepthDB: stats.DefaultNullDepthDB}
}

// Fig5Result holds one null-movement CCDF per trial plus summary stats.
type Fig5Result struct {
	// PerTrial holds the null-movement distribution of each repetition,
	// over all 64² ordered config pairs with qualifying nulls.
	PerTrial []*stats.ECDF
	// MaxMovement is the largest null movement (subcarriers) seen in any
	// trial; the paper's abstract headline is 9.
	MaxMovement int
	// FracBeyond3 is the pooled fraction of pairs moving the null by
	// more than 3 subcarriers ("a few show changes of over three
	// subcarriers (1 MHz)").
	FracBeyond3 float64
}

// RunFig5 reproduces Figure 5: the complementary CDF of the change in
// null location between pairs of PRESS element configurations, one curve
// per experimental repetition.
func RunFig5(opts Fig5Options) (*Fig5Result, error) {
	if opts.Trials < 1 {
		return nil, fmt.Errorf("experiments: fig5 needs ≥1 trial")
	}
	if opts.NullDepthDB == 0 {
		opts.NullDepthDB = stats.DefaultNullDepthDB
	}
	link, err := DefaultSISO(opts.Seed).Build()
	if err != nil {
		return nil, err
	}
	trials, err := link.SweepTrials(radio.PrototypeTiming, opts.Trials)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	var pooledBeyond3, pooledTotal int
	for _, tr := range trials {
		curves := radio.SNRCurves(tr)
		moves := stats.PairwiseNullMovements(curves, opts.NullDepthDB)
		res.PerTrial = append(res.PerTrial, stats.NewECDF(moves))
		for _, m := range moves {
			pooledTotal++
			if m > 3 {
				pooledBeyond3++
			}
			if int(m) > res.MaxMovement {
				res.MaxMovement = int(m)
			}
		}
	}
	if pooledTotal > 0 {
		res.FracBeyond3 = float64(pooledBeyond3) / float64(pooledTotal)
	}
	return res, nil
}

// Print renders the per-trial CCDF curves as columns.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: CCDF of null movement (subcarriers) between config pairs, one curve per trial\n")
	fmt.Fprintf(w, "%-9s", "movement")
	for t := range r.PerTrial {
		fmt.Fprintf(w, "  trial%-3d", t)
	}
	fmt.Fprintln(w)
	for m := 0; m <= r.MaxMovement; m++ {
		fmt.Fprintf(w, "%-9d", m)
		for _, e := range r.PerTrial {
			fmt.Fprintf(w, "  %-8.4f", e.CCDF(float64(m)-0.5)) // P(move ≥ m)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nHeadline: max null movement = %d subcarriers (paper: ≈9)\n", r.MaxMovement)
	fmt.Fprintf(w, "Headline: fraction of pairs moving >3 subcarriers = %.3f (paper: \"a few\")\n", r.FracBeyond3)
}

// Fig6Options parameterizes the Figure 6 reproduction (min-SNR change and
// min-SNR distributions).
type Fig6Options struct {
	Seed   uint64
	Trials int
}

// DefaultFig6 matches the paper: placement (e), 10 trials.
func DefaultFig6() Fig6Options { return Fig6Options{Seed: 442, Trials: 10} }

// Fig6Result holds the two panels of Figure 6 and the paper's in-text
// statistics.
type Fig6Result struct {
	// DeltaMin is the pooled CCDF of |Δ min-subcarrier SNR| across all
	// ordered config pairs and trials (left panel).
	DeltaMin *stats.ECDF
	// PerTrialMin holds, per trial, the CCDF of min-subcarrier SNR over
	// the 64 configurations (right panel: "each trace is one of the 10
	// trials").
	PerTrialMin []*stats.ECDF
	// FracChangeGE10 is the fraction of configuration changes causing a
	// ≥10 dB change in minimum SNR (paper: "around 38%").
	FracChangeGE10 float64
	// FracMinBelow20 is the fraction of configurations whose worst
	// subcarrier sits below 20 dB (paper: "less than 9%").
	FracMinBelow20 float64
}

// RunFig6 reproduces Figure 6 from the same placement-(e) sweep.
func RunFig6(opts Fig6Options) (*Fig6Result, error) {
	if opts.Trials < 1 {
		return nil, fmt.Errorf("experiments: fig6 needs ≥1 trial")
	}
	link, err := DefaultSISO(opts.Seed).Build()
	if err != nil {
		return nil, err
	}
	trials, err := link.SweepTrials(radio.PrototypeTiming, opts.Trials)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	var allDeltas []float64
	var ge10, pairs int
	var below20, cfgs int
	for _, tr := range trials {
		curves := radio.SNRCurves(tr)
		deltas := stats.PairwiseMinSNRChanges(curves)
		allDeltas = append(allDeltas, deltas...)
		for _, d := range deltas {
			pairs++
			if d >= 10 {
				ge10++
			}
		}
		mins := stats.MinPerCurve(curves)
		res.PerTrialMin = append(res.PerTrialMin, stats.NewECDF(mins))
		for _, m := range mins {
			cfgs++
			if m < 20 {
				below20++
			}
		}
	}
	res.DeltaMin = stats.NewECDF(allDeltas)
	if pairs > 0 {
		res.FracChangeGE10 = float64(ge10) / float64(pairs)
	}
	if cfgs > 0 {
		res.FracMinBelow20 = float64(below20) / float64(cfgs)
	}
	return res, nil
}

// Print renders both panels.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6 left: CCDF of |change in min subcarrier SNR| between config pairs\n")
	fmt.Fprintf(w, "%-12s  %-8s\n", "change (dB)", "CCDF")
	for _, x := range []float64{0, 2, 4, 6, 8, 10, 14, 18, 22, 26, 30} {
		fmt.Fprintf(w, "%-12.0f  %-8.4f\n", x, r.DeltaMin.CCDF(x))
	}
	fmt.Fprintf(w, "\nFigure 6 right: CCDF of min subcarrier SNR across the 64 configs, per trial\n")
	fmt.Fprintf(w, "%-9s", "snr (dB)")
	for t := range r.PerTrialMin {
		fmt.Fprintf(w, "  trial%-3d", t)
	}
	fmt.Fprintln(w)
	for _, x := range []float64{8, 12, 16, 20, 24, 28, 32, 36} {
		fmt.Fprintf(w, "%-9.0f", x)
		for _, e := range r.PerTrialMin {
			fmt.Fprintf(w, "  %-8.4f", e.CCDF(x))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nHeadline: fraction of config changes with ≥10 dB min-SNR change = %.3f (paper: ≈0.38)\n", r.FracChangeGE10)
	fmt.Fprintf(w, "Headline: fraction of configs with worst subcarrier below 20 dB = %.3f (paper: <0.09)\n", r.FracMinBelow20)
}
