package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"press/internal/control"
	"press/internal/element"
	"press/internal/geom"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/radio"
	"press/internal/rfphys"
)

// Fig7Options parameterizes the §3.2.2 network-harmonization experiment.
type Fig7Options struct {
	// Seed is the first candidate environment seed.
	Seed uint64
	// MaxSeedTries bounds the environment search: the paper states "the
	// elements and the surrounding environment were manipulated until a
	// frequency-selective channel was found", and this reproduces exactly
	// that loop.
	MaxSeedTries int
	// MinContrastDB is the half-band selectivity that counts as "clear"
	// (default 3 dB).
	MinContrastDB float64
}

// DefaultFig7 matches the paper: two USRP radios, two four-phase
// elements, environment manipulated until selectivity appears.
func DefaultFig7() Fig7Options {
	return Fig7Options{Seed: 700, MaxSeedTries: 40, MinContrastDB: 3}
}

// Fig7Result holds the two configurations with opposite frequency
// selectivity and their per-subcarrier SNR curves over the 102-subcarrier
// USRP grid.
type Fig7Result struct {
	// SeedUsed is the environment seed that exhibited selectivity.
	SeedUsed uint64
	// ConfigLower favours the lower half band; ConfigUpper the upper.
	ConfigLower, ConfigUpper string
	SNRLower, SNRUpper       []float64
	// ContrastLowerDB/UpperDB are mean(own half) − mean(other half).
	ContrastLowerDB, ContrastUpperDB float64
}

// buildFig7Link assembles the §3.2.2 testbed: USRP grid, two elements
// each with four reflective cable lengths and no absorptive load.
func buildFig7Link(seed uint64) (*radio.Link, error) {
	env := propagation.NewEnvironment(12, 9, 3)
	env.Obs = obsRegistry()
	env.Prof = profC()
	env.AddScatterers(rand.New(rand.NewPCG(seed, 0xa11ce)), 10, 35)
	cx, cy := 6.0, 4.5
	env.Blockers = append(env.Blockers,
		geom.NewBlocker(geom.V(cx-0.4, cy-0.3, 0), geom.V(cx-0.1, cy+0.5, 2.2), 35))

	tx := &radio.Radio{
		Node:       propagation.Node{Pos: geom.V(cx-1.25, cy, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &radio.Radio{
		Node:          propagation.Node{Pos: geom.V(cx+1.25, cy+0.2, 1.3), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	rng := rand.New(rand.NewPCG(seed, 0xe1e))
	positions, err := element.DefaultPlacement.Place(rng, env.Room, tx.Node.Pos, rx.Node.Pos, 2)
	if err != nil {
		return nil, err
	}
	elems := make([]*element.Element, 2)
	for i, pos := range positions {
		elems[i] = element.NewParabolicElement(pos, rx.Node.Pos)
		// "each of which is attached to four different reflective cable
		// lengths and no absorptive load, to decrease the reflected phase
		// granularity".
		elems[i].States = element.FourPhaseStates()
	}
	link, err := radio.NewLink(env, tx, rx, ofdm.USRP102(), element.NewArray(elems...), seed)
	if err != nil {
		return nil, err
	}
	link.Obs = obsRegistry()
	link.Prof = profC()
	attachObservers(link)
	return link, nil
}

// RunFig7 reproduces Figure 7: find an environment with a frequency-
// selective channel, then pick the two of the 16 configurations with the
// strongest opposite half-band selectivity.
func RunFig7(opts Fig7Options) (*Fig7Result, error) {
	if opts.MaxSeedTries < 1 {
		opts.MaxSeedTries = 1
	}
	if opts.MinContrastDB <= 0 {
		opts.MinContrastDB = 3
	}
	var best *Fig7Result
	for try := 0; try < opts.MaxSeedTries; try++ {
		seed := opts.Seed + uint64(try)
		link, err := buildFig7Link(seed)
		if err != nil {
			return nil, err
		}
		ms, err := link.Sweep(radio.PrototypeTiming, 0)
		if err != nil {
			return nil, err
		}
		lowerObj := control.HalfBandContrast{PreferLower: true}
		upperObj := control.HalfBandContrast{PreferLower: false}
		bestLo, bestUp := -1, -1
		var cLo, cUp float64
		for i, m := range ms {
			if s := lowerObj.Score(m.CSI); bestLo < 0 || s > cLo {
				bestLo, cLo = i, s
			}
			if s := upperObj.Score(m.CSI); bestUp < 0 || s > cUp {
				bestUp, cUp = i, s
			}
		}
		res := &Fig7Result{
			SeedUsed:        seed,
			ConfigLower:     link.Array.String(ms[bestLo].Config),
			ConfigUpper:     link.Array.String(ms[bestUp].Config),
			SNRLower:        ms[bestLo].CSI.SNRdB,
			SNRUpper:        ms[bestUp].CSI.SNRdB,
			ContrastLowerDB: cLo,
			ContrastUpperDB: cUp,
		}
		if best == nil || cLo+cUp > best.ContrastLowerDB+best.ContrastUpperDB {
			best = res
		}
		if cLo >= opts.MinContrastDB && cUp >= opts.MinContrastDB {
			return res, nil
		}
	}
	// No environment met the bar; return the most selective one found,
	// as the paper would keep manipulating — the caller sees the contrast
	// values and can judge.
	return best, nil
}

// Print renders the two curves.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: two configurations with opposite frequency selectivity (seed %d)\n", r.SeedUsed)
	fmt.Fprintf(w, "Lower-half config %s: contrast %+.1f dB; upper-half config %s: contrast %+.1f dB\n",
		r.ConfigLower, r.ContrastLowerDB, r.ConfigUpper, r.ContrastUpperDB)
	fmt.Fprintf(w, "%-10s  %-12s  %-12s\n", "subcarrier", "lower-cfg", "upper-cfg")
	for k := range r.SNRLower {
		fmt.Fprintf(w, "%-10d  %-12.2f  %-12.2f\n", k+1, r.SNRLower[k], r.SNRUpper[k])
	}
}
