package experiments

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"press/internal/obs"
	"press/internal/obs/scope"
)

// TestConcurrentRegistersSessionRoutes: when the ambient scope carries
// a live telemetry server (pressim -exp concurrent -telemetry-addr …),
// RunConcurrent must expose its ScopeSet there — a plain pressim run
// previously 404'd on /sessions because the set was never registered.
func TestConcurrentRegistersSessionRoutes(t *testing.T) {
	reg := obs.NewRegistry()
	srv := obs.NewServer(reg, nil)
	defer srv.Close()
	SetScope(scope.Adopt("", reg, nil, nil, nil, nil).WithServer(srv))
	defer SetScope(nil)

	res, err := RunConcurrent(ConcurrentOptions{Sessions: 3, Budget: 12, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconciled() {
		t.Fatalf("roll-up mismatch: %+v", res)
	}

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/sessions", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /sessions = %d, want 200\n%s", rr.Code, rr.Body.String())
	}
	var payload struct {
		Opened int64 `json:"opened_total"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/sessions not JSON: %v\n%s", err, rr.Body.String())
	}
	if payload.Opened != 3 {
		t.Errorf("opened_total = %d, want 3", payload.Opened)
	}
}
