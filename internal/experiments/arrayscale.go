package experiments

import (
	"errors"
	"fmt"
	"io"

	"press/internal/control"
	"press/internal/element"
)

// ArrayScalingRow is one array size's outcome.
type ArrayScalingRow struct {
	Elements int
	// Configs is the size of the configuration space (4^N).
	Configs int
	// GreedyGainDB and HierGainDB are the max-min-SNR gains achieved by
	// greedy and hierarchical search within the budget.
	GreedyGainDB, HierGainDB float64
	// GreedyEvals and HierEvals count measurements spent.
	GreedyEvals, HierEvals int
}

// ArrayScalingResult is the §5 future-work experiment: "prototyping and
// experimenting with larger arrays of smaller antennas". Many cheap omni
// elements replace the few parabolic prototypes; the question is how the
// gain and the search cost scale.
type ArrayScalingResult struct {
	Budget int
	Rows   []ArrayScalingRow
}

// RunArrayScaling sweeps array sizes with omni ("smaller") elements and
// a fixed measurement budget.
func RunArrayScaling(seed uint64, sizes []int, budget int) (*ArrayScalingResult, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16, 32}
	}
	if budget < 1 {
		budget = 400
	}
	res := &ArrayScalingResult{Budget: budget}
	for _, n := range sizes {
		row := ArrayScalingRow{Elements: n}

		build := func() (*linkWithBaseline, error) {
			scen := DefaultSISO(seed)
			scen.NumElements = n
			scen.ElementPattern = "omni"
			link, err := scen.Build()
			if err != nil {
				return nil, err
			}
			ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}}
			base, ok := link.Array.AllTerminated()
			if !ok {
				base = make(element.Config, link.Array.N())
			}
			baseline, err := ev.Eval(base)
			if err != nil {
				return nil, err
			}
			return &linkWithBaseline{link: link, ev: ev, baseline: baseline}, nil
		}

		lb, err := build()
		if err != nil {
			return nil, fmt.Errorf("experiments: %d elements: %w", n, err)
		}
		row.Configs = lb.link.Array.NumConfigs()
		g, err := (control.Greedy{Rng: newSeededRand(seed, uint64(n)), Restarts: 2}).
			Search(lb.link.Array, lb.ev.Eval, budget)
		if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
			return nil, err
		}
		row.GreedyGainDB = g.BestScore - lb.baseline
		row.GreedyEvals = g.Evaluations

		lb2, err := build()
		if err != nil {
			return nil, err
		}
		h, err := (control.Hierarchical{Rng: newSeededRand(seed, uint64(n)+100), GroupSize: 4}).
			Search(lb2.link.Array, lb2.ev.Eval, budget)
		if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
			return nil, err
		}
		row.HierGainDB = h.BestScore - lb2.baseline
		row.HierEvals = h.Evaluations

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the table.
func (r *ArrayScalingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Array scaling (§5 future work): many small omni elements, budget %d measurements\n\n", r.Budget)
	fmt.Fprintf(w, "%-9s  %-12s  %-16s  %-14s  %-16s  %-12s\n",
		"elements", "configs", "greedy gain dB", "greedy meas", "hierarch gain dB", "hier meas")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9d  %-12d  %-16.2f  %-14d  %-16.2f  %-12d\n",
			row.Elements, row.Configs, row.GreedyGainDB, row.GreedyEvals,
			row.HierGainDB, row.HierEvals)
	}
	fmt.Fprintf(w, "\nGains grow with element count even as the configuration space explodes —\n")
	fmt.Fprintf(w, "exactly why §4.2 rules out enumeration and §4.1 argues many cheap elements\n")
	fmt.Fprintf(w, "can replace few expensive ones.\n")
}
