package experiments

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"press/internal/obs/flight"
	"press/internal/obs/scope"
	"press/internal/obs/slo"
)

func TestRunDemoStaticEndpoint(t *testing.T) {
	res, err := RunDemo(DemoOptions{Seed: 7, Loops: 3, Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadline != 0 {
		t.Errorf("static endpoint got deadline %v", res.Deadline)
	}
	if len(res.Loops) != 3 || res.Misses != 0 || res.MissRatio() != 0 {
		t.Errorf("static demo: %d loops, %d misses", len(res.Loops), res.Misses)
	}
	for _, row := range res.Loops {
		if row.Latency <= 0 || row.Missed || math.IsNaN(row.GainDB) {
			t.Errorf("bad row: %+v", row)
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "miss ratio 0.00") {
		t.Errorf("Print missing miss ratio:\n%s", sb.String())
	}
}

// TestRunDemoTracedMisses runs the demo with a stall longer than the
// coherence deadline under an ambient loop tracer and checks that both
// the experiment's own verdicts and the regenerated KindLoop flight
// frames agree every loop missed.
func TestRunDemoTracedMisses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	rec, err := flight.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := slo.NewTracer(nil, slo.Config{Flight: rec})
	SetScope(scope.Adopt("", nil, nil, nil, rec, nil).WithTracer(tr))
	defer SetScope(nil)

	res, err := RunDemo(DemoOptions{Seed: 7, Loops: 2, Budget: 4, SpeedMph: 6, SlowPhase: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadline <= 0 || res.Deadline > 30*time.Millisecond {
		t.Fatalf("6 mph deadline = %v", res.Deadline)
	}
	if res.Misses != 2 || res.MissRatio() != 1 {
		t.Errorf("stalled demo: %d/%d missed", res.Misses, len(res.Loops))
	}
	if tr.Deadline() != res.Deadline {
		t.Errorf("demo did not hand the tracer its deadline: %v != %v", tr.Deadline(), res.Deadline)
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := flight.ReadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Loops) != 2 {
		t.Fatalf("recorded %d KindLoop frames, want 2", len(run.Loops))
	}
	for _, lr := range run.Loops {
		if !lr.Missed || lr.Name != "demo" || lr.DeadlineNs != int64(res.Deadline) {
			t.Errorf("loop frame: %+v", lr)
		}
	}
}

func TestRunDemoRejectsNegativeStall(t *testing.T) {
	if _, err := RunDemo(DemoOptions{SlowPhase: -time.Second}); err == nil {
		t.Error("negative slow-phase accepted")
	}
}

func TestRunSpecDemoParamsRoundTrip(t *testing.T) {
	spec := RunSpec{
		Exp: "demo", Seed: 9, Budget: 11,
		Loops: 7, Speed: 3.5, SlowPhase: 25 * time.Millisecond,
	}
	man := &flight.Manifest{Binary: "pressim", Scenario: spec.Exp, Seed: spec.Seed}
	man.SetParams(spec.Params())
	got, err := SpecFromManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Errorf("round trip = %+v, want %+v", got, spec)
	}
}

// TestSpecFromManifestLegacyParams checks that manifests recorded before
// the demo experiment existed — no loops/speed/slow_phase params — still
// parse.
func TestSpecFromManifestLegacyParams(t *testing.T) {
	man := &flight.Manifest{Binary: "pressim", Scenario: "fig4", Seed: 3}
	man.SetParams([]flight.Param{
		{Key: "exp", Value: "fig4"}, {Key: "trials", Value: "2"},
		{Key: "placements", Value: "4"}, {Key: "snapshots", Value: "1"},
		{Key: "reps", Value: "1"}, {Key: "budget", Value: "50"},
	})
	got, err := SpecFromManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loops != 0 || got.Speed != 0 || got.SlowPhase != 0 {
		t.Errorf("legacy manifest grew demo params: %+v", got)
	}
}
