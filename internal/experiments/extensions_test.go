package experiments

import "testing"

func TestContinuousAblationOrdering(t *testing.T) {
	res, err := RunContinuousAblation(442, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of phase resolution: baseline ≤ SP4T ≤ finer banks,
	// with slack for measurement noise.
	if res.Discrete3DB < res.BaselineDB {
		t.Errorf("SP4T optimum %.2f below baseline %.2f", res.Discrete3DB, res.BaselineDB)
	}
	if res.Discrete8DB < res.Discrete3DB-1 {
		t.Errorf("8-phase (%.2f) materially below SP4T (%.2f)", res.Discrete8DB, res.Discrete3DB)
	}
	if res.ContinuousDB < res.Discrete3DB-1 {
		t.Errorf("continuous (%.2f) materially below SP4T (%.2f)", res.ContinuousDB, res.Discrete3DB)
	}
	// Quantizing back to the coarse bank costs performance but stays a
	// valid configuration (above baseline).
	if res.QuantizedDB < res.BaselineDB-1 {
		t.Errorf("quantized config (%.2f) below baseline (%.2f)", res.QuantizedDB, res.BaselineDB)
	}
	// The §4.1 conjecture from the continuous side: 8 discrete phases
	// capture nearly all of the continuous gain.
	if res.ContinuousDB-res.Discrete8DB > 2 {
		t.Errorf("continuous beats 8 phases by %.2f dB; conjecture would cap it around ≤2",
			res.ContinuousDB-res.Discrete8DB)
	}
}

func TestStalenessGrowsWithSpeed(t *testing.T) {
	res, err := RunStaleness(442, []float64{0, 0.5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	static := res.Rows[0]
	if static.RegretDB > 1 {
		t.Errorf("static regret %.2f dB; should be ≈0", static.RegretDB)
	}
	// Moving clients: the slow sweep's winner must be visibly stale.
	for _, row := range res.Rows[1:] {
		if row.RegretDB < 1 {
			t.Errorf("%.1f mph: regret %.2f dB; expected the stale-winner penalty", row.SpeedMph, row.RegretDB)
		}
		// The oracle (instantaneous re-sweep) can never be below the
		// stale winner's actual performance by more than noise.
		if row.OracleDB < row.ActualDB-1 {
			t.Errorf("%.1f mph: oracle %.2f below actual %.2f", row.SpeedMph, row.OracleDB, row.ActualDB)
		}
	}
}
