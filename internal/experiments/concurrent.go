package experiments

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"

	"press/internal/control"
	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/scope"
)

// SessionResult summarizes one room session: the calibrated NLoS
// scenario searched under a per-room measurement budget, observed
// through that room's telemetry scope.
type SessionResult struct {
	ID         string
	Seed       uint64
	Budget     int
	BaselineDB float64
	BestDB     float64
	GainDB     float64
	Evals      int
}

// Print writes the single-session row with a header.
func (r SessionResult) Print(w io.Writer) {
	fmt.Fprintln(w, "session    seed  baseline_db  best_db  gain_db  evals")
	r.printRow(w)
}

func (r SessionResult) printRow(w io.Writer) {
	fmt.Fprintf(w, "%-9s %5d  %11.2f  %7.2f  %7.2f  %5d\n",
		r.ID, r.Seed, r.BaselineDB, r.BestDB, r.GainDB, r.Evals)
}

// sessionSpec is the RunSpec a session manifest round-trips through —
// what `pressctl replay -flight-dir ROOT -session ID` re-executes.
func sessionSpec(seed uint64, budget int) RunSpec {
	return RunSpec{Exp: "session", Seed: seed, Budget: budget}
}

// RunSession executes one room session: the §3.2 NLoS scenario for the
// session's seed, a greedy search under the measurement budget, every
// measurement observed through sc (nil = unobserved). It is the
// deterministic replay unit behind Binary "pressim" / Scenario
// "session" manifests: the same (seed, budget) regenerates the same
// CSI and search-decision streams.
func RunSession(id string, seed uint64, budget int, sc *scope.Scope) (SessionResult, error) {
	if budget <= 0 {
		budget = 60
	}
	scen := DefaultSISO(seed)
	scen.Scope = sc
	link, err := scen.Build()
	if err != nil {
		return SessionResult{}, err
	}
	ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}}
	base, ok := link.Array.AllTerminated()
	if !ok {
		base = make([]int, link.Array.N())
	}
	baseline, err := ev.Eval(base)
	if err != nil {
		return SessionResult{}, err
	}
	searcher := control.InstrumentScope(
		control.Greedy{Rng: newSeededRand(seed, 0x5e5510), Restarts: 4}, sc)
	res, err := searcher.Search(link.Array, ev.Eval, budget)
	if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
		return SessionResult{}, err
	}
	return SessionResult{
		ID: id, Seed: seed, Budget: budget,
		BaselineDB: baseline, BestDB: res.BestScore,
		GainDB: res.BestScore - baseline, Evals: res.Evaluations,
	}, nil
}

// ConcurrentOptions parameterizes the multi-room experiment: many
// sessions driven in parallel, each with its own telemetry scope in one
// bounded ScopeSet rolling up into the process registry.
type ConcurrentOptions struct {
	// Seed is the base seed; session i runs at Seed+i (0 = 442).
	Seed uint64
	// Sessions is the number of rooms driven.
	Sessions int
	// Workers bounds the sessions in flight at once (0 = min(4,
	// GOMAXPROCS): small enough that the LRU can only ever evict
	// already-finished rooms, whose flight logs are complete).
	Workers int
	// Budget is the per-session measurement budget.
	Budget int
	// MaxLive caps scope-set cardinality; finished rooms stay registered
	// (browsable via /sessions) until the cap evicts the oldest. Raised
	// to Workers when smaller so running rooms are never evicted.
	MaxLive int
	// FlightRoot, when set, gives every session its own run log as a
	// sibling run under this root — the shared -flight-dir that
	// `pressctl replay -session` selects from.
	FlightRoot string
}

// DefaultConcurrent returns the calibrated multi-room setup: 12 rooms,
// 8 live scopes (so the tail of the run demonstrates LRU eviction), a
// light per-room budget.
func DefaultConcurrent() ConcurrentOptions {
	return ConcurrentOptions{Sessions: 12, Budget: 60, MaxLive: 8}
}

// ConcurrentResult carries the per-room rows plus the cardinality and
// roll-up accounting the experiment exists to prove.
type ConcurrentResult struct {
	Sessions []SessionResult
	// Opened/Evicted/Live are the scope-set counters after the run.
	Opened, Evicted, Live int64
	// SumEvals is the sum of per-session search_evaluations_total
	// counters; RollUp is the parent registry's delta over the run. The
	// hierarchical roll-up contract is SumEvals == RollUp — including
	// the contributions of evicted rooms.
	SumEvals, RollUp int64
}

// Reconciled reports whether per-session totals and the hierarchical
// roll-up agree.
func (r *ConcurrentResult) Reconciled() bool { return r.SumEvals == r.RollUp }

// Print writes the per-room table and the reconciliation summary.
func (r *ConcurrentResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Concurrent rooms: per-session telemetry scopes with hierarchical roll-up")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "session    seed  baseline_db  best_db  gain_db  evals")
	for _, s := range r.Sessions {
		s.printRow(w)
	}
	fmt.Fprintf(w, "\nscopes: opened %d, evicted %d, live %d\n", r.Opened, r.Evicted, r.Live)
	status := "OK"
	if !r.Reconciled() {
		status = "MISMATCH"
	}
	fmt.Fprintf(w, "roll-up: sum(session evals) = %d, parent delta = %d  [%s]\n",
		r.SumEvals, r.RollUp, status)
}

// RunConcurrent drives Sessions room sessions through one bounded
// ScopeSet parented on the ambient registry (or a private root when
// telemetry is off — the roll-up check runs either way), then verifies
// that per-session counters and the parent roll-up reconcile exactly.
func RunConcurrent(o ConcurrentOptions) (*ConcurrentResult, error) {
	if o.Sessions <= 0 {
		o.Sessions = 12
	}
	if o.Budget <= 0 {
		o.Budget = 60
	}
	if o.Seed == 0 {
		o.Seed = 442
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	if workers > o.Sessions {
		workers = o.Sessions
	}
	capLive := o.MaxLive
	if capLive <= 0 {
		capLive = scope.DefaultMaxScopes
	}
	if capLive < workers {
		capLive = workers
	}

	parent := obsRegistry()
	if parent == nil {
		parent = obs.NewRegistry()
	}
	evalsBefore := parent.Counter("search_evaluations_total").Value()
	openedBefore := parent.Counter(scope.CounterScopesOpened).Value()
	evictedBefore := parent.Counter(scope.CounterScopesEvicted).Value()

	set := scope.NewSet(parent, capLive)
	defer set.Close()
	if srv := CurrentScope().Server(); srv != nil {
		// -telemetry-addr is serving: expose the rooms live on
		// /sessions (+ per-session metrics/healthz and ?session=
		// filtered SSE). On a repeat run in one process the routes
		// already exist; RegisterRoutes still repoints the resolver
		// and event publishing at this set before failing, so the
		// error is the expected steady state, not a fault.
		_ = set.RegisterRoutes(srv)
	}
	// With -export-url set, each room's registry ships as its own
	// session-labeled batch stream for as long as the room lives.
	set.AttachExporter(CurrentScope().Exporter())
	// With -tsdb-dir set, room removal/eviction releases the room's
	// series budget in the history store once its tail is collected.
	set.AttachTSDB(CurrentScope().TSDB())

	results := make([]SessionResult, o.Sessions)
	perScope := make([]int64, o.Sessions)
	errs := make([]error, o.Sessions)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < o.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			id := fmt.Sprintf("room-%02d", i)
			seed := o.Seed + uint64(i)
			var cfg scope.Config
			if o.FlightRoot != "" {
				cfg.FlightDir = filepath.Join(o.FlightRoot, flight.NewRunID())
			}
			sc, err := set.Open(id, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			man := flight.NewManifest("pressim", "session", seed)
			man.SetParams(sessionSpec(seed, o.Budget).Params())
			sc.RecordManifest(man)
			results[i], errs[i] = RunSession(id, seed, o.Budget, sc)
			// The scope's own counter, not Result.Evaluations: the
			// reconciliation below must compare exactly what the child
			// registries counted against what chained into the parent.
			perScope[i] = sc.Registry().Counter("search_evaluations_total").Value()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &ConcurrentResult{
		Sessions: results,
		Opened:   parent.Counter(scope.CounterScopesOpened).Value() - openedBefore,
		Evicted:  parent.Counter(scope.CounterScopesEvicted).Value() - evictedBefore,
		Live:     int64(set.Len()),
		RollUp:   parent.Counter("search_evaluations_total").Value() - evalsBefore,
	}
	for _, n := range perScope {
		res.SumEvals += n
	}
	if !res.Reconciled() {
		return res, fmt.Errorf("experiments: roll-up mismatch: sessions counted %d evaluations, parent saw %d",
			res.SumEvals, res.RollUp)
	}
	return res, nil
}
