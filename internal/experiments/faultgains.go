package experiments

import (
	"errors"

	"press/internal/control"
	"press/internal/element"
	"press/internal/inverse"
	"press/internal/radio"
)

// faultGains measures the max-min-SNR gain over the healthy baseline for
// a measurement-driven greedy controller and a model-guided controller,
// both running on a link whose array suffers the given faults.
func faultGains(seed uint64, faults element.Faults) (measured, model float64, err error) {
	build := func() (*linkWithBaseline, error) {
		scen := DefaultSISO(seed)
		scen.NumElements = 6
		link, err := scen.Build()
		if err != nil {
			return nil, err
		}
		link.Faults = faults
		ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}}
		base, ok := link.Array.AllTerminated()
		if !ok {
			base = make(element.Config, link.Array.N())
		}
		baseline, err := ev.Eval(base)
		if err != nil {
			return nil, err
		}
		return &linkWithBaseline{link: link, ev: ev, baseline: baseline}, nil
	}

	// Measurement-driven greedy.
	lb, err := build()
	if err != nil {
		return 0, 0, err
	}
	r, err := instrument(control.Greedy{Rng: newSeededRand(seed, 0xfa01), Restarts: 2}).
		Search(lb.link.Array, lb.ev.Eval, 300)
	if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
		return 0, 0, err
	}
	measured = r.BestScore - lb.baseline

	// Model-guided: the inverse problem's model assumes a healthy array.
	lb2, err := build()
	if err != nil {
		return 0, 0, err
	}
	prob := &inverse.Problem{
		Env:   lb2.link.Env,
		TX:    lb2.link.TX.Node,
		RX:    lb2.link.RX.Node,
		Array: lb2.link.Array,
		Grid:  lb2.link.Grid,
	}
	mg := control.ModelGuided{Problem: prob, RefinePasses: 1}
	r2, err := instrument(mg).Search(lb2.link.Array, lb2.ev.Eval, 300)
	if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
		return 0, 0, err
	}
	model = r2.BestScore - lb2.baseline
	return measured, model, nil
}

type linkWithBaseline struct {
	link     *radio.Link
	ev       *control.LinkEvaluator
	baseline float64
}
