// Package experiments contains one runnable harness per figure and
// in-text result of the paper's exploratory study (§3), plus the
// ablations of the §4 design-space discussion. Each harness builds its
// workload, runs the sweep, computes the paper's statistics, and can
// print the same rows/series the paper plots. cmd/pressim and the
// repository-root benchmarks are thin wrappers around these functions.
package experiments

import (
	"fmt"
	"math/rand/v2"

	"press/internal/element"
	"press/internal/geom"
	"press/internal/obs/scope"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/radio"
	"press/internal/rfphys"
)

// SISOScenario parameterizes the standard §3.2 testbed: a non-line-of-
// sight link in a controlled indoor room with a small passive PRESS
// array between the endpoints.
type SISOScenario struct {
	// Seed drives placement, scatterers, and measurement noise.
	Seed uint64
	// NumElements is the PRESS array size (the paper uses 3).
	NumElements int
	// ElementStates is the switch bank (default SP4TStates).
	ElementStates []element.State
	// ElementPattern chooses the element antenna: "parabolic" (paper
	// prototype) or "omni".
	ElementPattern string
	// LineOfSight leaves the direct path unblocked (the §3 preliminary
	// experiment); the default is the blocked NLoS setup.
	LineOfSight bool
	// NumScatterers and ScattererAmp control the ambient multipath
	// (panel-scale reflectors; see DESIGN.md).
	NumScatterers int
	ScattererAmp  float64
	// RoomX and RoomY set the lab floor plan in metres (default 12×9).
	// Bigger rooms mean longer bounce paths, hence more frequency nulls
	// inside the 20 MHz band.
	RoomX, RoomY float64
	// Scope, when set, receives this scenario's telemetry instead of the
	// package-ambient scope — how per-session harnesses (pressim -exp
	// concurrent, the pressd arc) observe each room independently.
	Scope *scope.Scope
}

// DefaultSISO returns the paper's §3.2 setup for a given seed: three
// parabolic SP4T elements, blocked direct path.
func DefaultSISO(seed uint64) SISOScenario {
	return SISOScenario{
		Seed:           seed,
		NumElements:    3,
		ElementPattern: "parabolic",

		ScattererAmp:  35,
		NumScatterers: 10,
	}
}

// Build assembles the link: a 14×10×3 m lab (bounce paths tens of metres
// long push the coherence bandwidth below the occupied band, so frequency
// nulls fall *inside* the 20 MHz channel, as in the paper's Figure 4),
// endpoints 2.5 m apart near the middle, elements on the paper's 1–2 m
// grid, WARP-like radios on the Wi-Fi grid.
func (s SISOScenario) Build() (*radio.Link, error) {
	rx2, ry2 := s.RoomX, s.RoomY
	if rx2 <= 0 {
		rx2 = 12
	}
	if ry2 <= 0 {
		ry2 = 9
	}
	sc := s.Scope
	if sc == nil {
		sc = CurrentScope()
	}
	env := propagation.NewEnvironment(rx2, ry2, 3)
	env.AttachScope(sc)
	env.AddScatterers(rand.New(rand.NewPCG(s.Seed, 0xa11ce)), s.NumScatterers, s.ScattererAmp)

	cx, cy := rx2/2, ry2/2
	tx := &radio.Radio{
		Node:       propagation.Node{Pos: geom.V(cx-1.25, cy, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &radio.Radio{
		Node:          propagation.Node{Pos: geom.V(cx+1.25, cy+0.2, 1.3), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	if !s.LineOfSight {
		// The equipment blocking the direct path in the paper's NLoS
		// setup: a metal cabinet mid-link.
		env.Blockers = append(env.Blockers,
			geom.NewBlocker(geom.V(cx-0.4, cy-0.3, 0), geom.V(cx-0.1, cy+0.5, 2.2), 35))
	}

	n := s.NumElements
	if n < 1 {
		return nil, fmt.Errorf("experiments: need at least one element")
	}
	rng := rand.New(rand.NewPCG(s.Seed, 0xe1e))
	positions, err := element.DefaultPlacement.Place(rng, env.Room, tx.Node.Pos, rx.Node.Pos, n)
	if err != nil {
		return nil, err
	}
	elems := make([]*element.Element, n)
	for i, pos := range positions {
		switch s.ElementPattern {
		case "", "parabolic":
			elems[i] = element.NewParabolicElement(pos, rx.Node.Pos)
		case "omni":
			elems[i] = element.NewOmniElement(pos)
		default:
			return nil, fmt.Errorf("experiments: unknown element pattern %q", s.ElementPattern)
		}
		if len(s.ElementStates) > 0 {
			elems[i].States = s.ElementStates
		}
	}
	link, err := radio.NewLink(env, tx, rx, ofdm.WiFi20(), element.NewArray(elems...), s.Seed)
	if err != nil {
		return nil, err
	}
	link.AttachScope(sc)
	return link, nil
}

// MIMOScenario parameterizes the §3.2.3 testbed: a 2×2 NLoS transceiver
// pair in a larger room (the condition number only varies across the
// band once the delay spread pushes the coherence bandwidth below the
// occupied band) with omni PRESS elements co-linear with the TX antennas
// at λ spacing.
type MIMOScenario struct {
	Seed uint64
	// NumElements is the array size (3 → the paper's 64 configurations).
	NumElements int
	// Snapshots averaged per configuration (the paper uses 50).
	Snapshots int
	// Dim is the antenna count per side (default 2, the paper's 2×2;
	// larger values probe the §3.2.3 prediction that PRESS's impact
	// grows with MIMO dimension).
	Dim int
	// Scope, when set, overrides the package-ambient telemetry scope —
	// same session-orientation as SISOScenario.Scope.
	Scope *scope.Scope
}

// DefaultMIMO returns the §3.2.3 setup.
func DefaultMIMO(seed uint64) MIMOScenario {
	return MIMOScenario{Seed: seed, NumElements: 3, Snapshots: 50}
}

// Build assembles the Dim×Dim link.
func (s MIMOScenario) Build() (*radio.MIMOLink, error) {
	sc := s.Scope
	if sc == nil {
		sc = CurrentScope()
	}
	env := propagation.NewEnvironment(14, 10, 3)
	env.AttachScope(sc)
	env.AddScatterers(rand.New(rand.NewPCG(s.Seed, 0xa11ce)), 16, 40)
	env.Blockers = append(env.Blockers,
		geom.NewBlocker(geom.V(6.6, 4.7, 0), geom.V(6.9, 5.5, 2.2), 35))

	dim := s.Dim
	if dim < 1 {
		dim = 2
	}
	lambda := rfphys.Wavelength(2.462e9)
	omni := rfphys.Omni{PeakGainDBi: 2}
	txAnts := make([]propagation.Node, dim)
	rxAnts := make([]propagation.Node, dim)
	for i := 0; i < dim; i++ {
		txAnts[i] = propagation.Node{Pos: geom.V(5.5, 5.0+float64(i)*lambda, 1.5), Pattern: omni}
		rxAnts[i] = propagation.Node{Pos: geom.V(8, 5.2+float64(i)*lambda, 1.3), Pattern: omni}
	}
	n := s.NumElements
	if n < 1 {
		return nil, fmt.Errorf("experiments: need at least one element")
	}
	elems := make([]*element.Element, n)
	for i := range elems {
		// "Omnidirectional PRESS elements are deployed co-linear to the
		// transmit antenna pair with λ spacing between the PRESS antenna
		// elements" — continuing the TX line past its last antenna.
		elems[i] = element.NewOmniElement(geom.V(5.5, 5.0+float64(dim+i)*lambda, 1.5))
	}
	ml, err := radio.NewMIMOLink(env, txAnts, rxAnts, ofdm.WiFi20(), element.NewArray(elems...), s.Seed)
	if err != nil {
		return nil, err
	}
	ml.NumTraining = 4
	ml.AttachScope(sc)
	return ml, nil
}

// meanCurves averages per-config SNR curves across trials:
// result[cfg][k] = mean over trials of trial[cfg].SNRdB[k].
func meanCurves(trials [][]radio.Measurement) [][]float64 {
	if len(trials) == 0 {
		return nil
	}
	nCfg := len(trials[0])
	nSC := len(trials[0][0].CSI.SNRdB)
	out := make([][]float64, nCfg)
	for c := 0; c < nCfg; c++ {
		out[c] = make([]float64, nSC)
	}
	for _, tr := range trials {
		for c := 0; c < nCfg; c++ {
			for k := 0; k < nSC; k++ {
				out[c][k] += tr[c].CSI.SNRdB[k]
			}
		}
	}
	inv := 1 / float64(len(trials))
	for c := range out {
		for k := range out[c] {
			out[c][k] *= inv
		}
	}
	return out
}

// newSeededRand returns a deterministic RNG for experiment sub-tasks.
func newSeededRand(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream))
}
