package experiments

import "testing"

func TestMIMOScalingConfirmsPrediction(t *testing.T) {
	res, err := RunMIMOScaling(822, []int{2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	d2, d4 := res.Rows[0], res.Rows[1]
	if d2.Dim != 2 || d4.Dim != 4 {
		t.Fatalf("dims = %d, %d", d2.Dim, d4.Dim)
	}
	// The §3.2.3 prediction: PRESS's conditioning control grows with
	// MIMO dimension.
	if d4.SpreadDB <= d2.SpreadDB {
		t.Errorf("4×4 spread %.2f not above 2×2 spread %.2f — prediction violated",
			d4.SpreadDB, d2.SpreadDB)
	}
	// Larger channels are also harder to keep well conditioned.
	if d4.BestMedianDB <= d2.BestMedianDB {
		t.Errorf("4×4 best median %.2f not above 2×2 %.2f", d4.BestMedianDB, d2.BestMedianDB)
	}
	for _, row := range res.Rows {
		if row.SpreadDB < 0 {
			t.Errorf("dim %d: negative spread", row.Dim)
		}
	}
}

func TestFaultToleranceDegradesGracefully(t *testing.T) {
	res, err := RunFaultTolerance(442)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	healthy := res.Rows[0]
	if healthy.Failed != 0 || healthy.MeasuredGainDB < 2 {
		t.Errorf("healthy array gain %.2f suspiciously low", healthy.MeasuredGainDB)
	}
	// Gains shrink as elements fail, but never go meaningfully negative:
	// the worst case is an array that cannot help, not one that hurts
	// (stuck reflective elements can cost a little vs the terminated
	// baseline, hence the 1 dB slack).
	prev := healthy.MeasuredGainDB
	for _, row := range res.Rows[1:] {
		if row.MeasuredGainDB > prev+1 {
			t.Errorf("%d failed: gain %.2f above healthier %.2f", row.Failed, row.MeasuredGainDB, prev)
		}
		if row.MeasuredGainDB < -1 {
			t.Errorf("%d failed: closed loop made the link worse: %.2f", row.Failed, row.MeasuredGainDB)
		}
		prev = row.MeasuredGainDB
	}
	// Under faults the measurement loop should hold at least the blind
	// model's level (slack for noise).
	for _, row := range res.Rows[1:] {
		if row.MeasuredGainDB < row.ModelGainDB-1 {
			t.Errorf("%d failed: measured %.2f below blind model %.2f",
				row.Failed, row.MeasuredGainDB, row.ModelGainDB)
		}
	}
}

func TestArrayScalingGainsGrow(t *testing.T) {
	res, err := RunArrayScaling(442, []int{4, 16}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small, large := res.Rows[0], res.Rows[1]
	// §5: larger arrays of smaller antennas command more of the channel.
	if large.GreedyGainDB <= small.GreedyGainDB {
		t.Errorf("16 elements (%.2f dB) not above 4 elements (%.2f dB)",
			large.GreedyGainDB, small.GreedyGainDB)
	}
	// Hierarchical search must stay in the same gain regime while
	// spending fewer measurements than greedy at scale.
	if large.HierGainDB < large.GreedyGainDB-2 {
		t.Errorf("hierarchical (%.2f dB) far below greedy (%.2f dB) at 16 elements",
			large.HierGainDB, large.GreedyGainDB)
	}
	if large.HierEvals >= large.GreedyEvals {
		t.Errorf("hierarchical used %d measurements vs greedy %d at 16 elements",
			large.HierEvals, large.GreedyEvals)
	}
}
