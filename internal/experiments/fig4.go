package experiments

import (
	"fmt"
	"io"
	"math"

	"press/internal/radio"
	"press/internal/stats"
)

// Fig4Options parameterizes the Figure 4 reproduction.
type Fig4Options struct {
	// Placements is the number of random PRESS element placements
	// (the paper's (a)–(h): 8).
	Placements int
	// Trials is the sweep repetition count (the paper uses 10).
	Trials int
	// BaseSeed offsets the per-placement seeds.
	BaseSeed uint64
}

// DefaultFig4 matches the paper: 8 placements × 10 trials × 64 configs.
func DefaultFig4() Fig4Options {
	return Fig4Options{Placements: 8, Trials: 10, BaseSeed: 438}
}

// Fig4Placement is one panel of Figure 4: the two configurations with
// the largest single-subcarrier SNR difference at one element placement.
type Fig4Placement struct {
	Label string
	// ConfigA/B are the paper-notation names of the chosen pair.
	ConfigA, ConfigB string
	// SNRA/B are their mean per-subcarrier SNR curves (dB) across trials.
	SNRA, SNRB []float64
	// MaxMeanDiffDB is the largest per-subcarrier difference between the
	// two mean curves.
	MaxMeanDiffDB float64
	// MaxSingleDiffDB is the largest per-subcarrier difference observed
	// within any single trial, across all config pairs.
	MaxSingleDiffDB float64
}

// Fig4Result aggregates all placements plus the paper's two headline
// numbers: "the largest change in the mean SNR on any given subcarrier is
// 18.6 dB, and the largest change in the SNR within one experimental
// repetition is 26 dB".
type Fig4Result struct {
	Placements []Fig4Placement
	// LargestMeanChangeDB is max over placements of MaxMeanDiffDB.
	LargestMeanChangeDB float64
	// LargestSingleChangeDB is max over placements of MaxSingleDiffDB.
	LargestSingleChangeDB float64
}

// RunFig4 reproduces Figure 4: for each random placement, sweep all 64
// configurations Trials times, average per-config SNR curves, and select
// the pair of configurations with the largest single-subcarrier SNR
// difference.
func RunFig4(opts Fig4Options) (*Fig4Result, error) {
	if opts.Placements < 1 || opts.Trials < 1 {
		return nil, fmt.Errorf("experiments: fig4 needs ≥1 placement and trial")
	}
	res := &Fig4Result{}
	for p := 0; p < opts.Placements; p++ {
		scen := DefaultSISO(opts.BaseSeed + uint64(p))
		link, err := scen.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: placement %d: %w", p, err)
		}
		trials, err := link.SweepTrials(radio.PrototypeTiming, opts.Trials)
		if err != nil {
			return nil, fmt.Errorf("experiments: placement %d: %w", p, err)
		}
		mean := meanCurves(trials)

		i, j, meanDiff, ok := stats.LargestPairDifference(mean)
		if !ok {
			return nil, fmt.Errorf("experiments: placement %d: no config pair", p)
		}
		// Largest within-one-trial difference across all pairs.
		var single float64
		for _, tr := range trials {
			curves := radio.SNRCurves(tr)
			if _, _, d, ok := stats.LargestPairDifference(curves); ok && d > single {
				single = d
			}
		}
		pl := Fig4Placement{
			Label:           fmt.Sprintf("(%c)", 'a'+p%26),
			ConfigA:         link.Array.String(trials[0][i].Config),
			ConfigB:         link.Array.String(trials[0][j].Config),
			SNRA:            mean[i],
			SNRB:            mean[j],
			MaxMeanDiffDB:   meanDiff,
			MaxSingleDiffDB: single,
		}
		res.Placements = append(res.Placements, pl)
		res.LargestMeanChangeDB = math.Max(res.LargestMeanChangeDB, meanDiff)
		res.LargestSingleChangeDB = math.Max(res.LargestSingleChangeDB, single)
	}
	return res, nil
}

// Print renders the figure as paper-style series: per placement, the two
// chosen configurations and their per-subcarrier SNR columns.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: per-subcarrier SNR, two configurations with the largest single-subcarrier difference\n")
	for _, pl := range r.Placements {
		fmt.Fprintf(w, "\nPlacement %s: %s vs %s  (max mean diff %.1f dB, max single-trial diff %.1f dB)\n",
			pl.Label, pl.ConfigA, pl.ConfigB, pl.MaxMeanDiffDB, pl.MaxSingleDiffDB)
		fmt.Fprintf(w, "%-10s  %-12s  %-12s\n", "subcarrier", pl.ConfigA, pl.ConfigB)
		for k := range pl.SNRA {
			fmt.Fprintf(w, "%-10d  %-12.2f  %-12.2f\n", k, pl.SNRA[k], pl.SNRB[k])
		}
	}
	fmt.Fprintf(w, "\nHeadline: largest mean-SNR change on any subcarrier = %.1f dB (paper: 18.6 dB)\n", r.LargestMeanChangeDB)
	fmt.Fprintf(w, "Headline: largest single-repetition SNR change      = %.1f dB (paper: 26 dB)\n", r.LargestSingleChangeDB)
}
