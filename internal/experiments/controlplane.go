package experiments

import (
	"fmt"
	"io"
	"time"

	"press/internal/control"
	"press/internal/radio"
)

// ControlPlaneRow evaluates one §4.2 control-plane candidate medium.
type ControlPlaneRow struct {
	Medium string
	// ActuationLatency is the one-way command latency of the medium.
	ActuationLatency time.Duration
	// PerMeasurement is actuation plus one CSI sounding.
	PerMeasurement time.Duration
	// WalkBudget and RunBudget are the §2 measurement budgets at 0.5 and
	// 6 mph.
	WalkBudget, RunBudget int
	// GainAtWalkDB is the greedy max-min-SNR gain achievable within the
	// walking budget on the calibrated testbed.
	GainAtWalkDB float64
}

// ControlPlaneResult compares the §4.2 candidates: "likely wireless
// control plane candidates are low-frequency, low-rate bands ... other
// candidates include ultrasound ... as well as wires".
type ControlPlaneResult struct {
	Rows []ControlPlaneRow
}

// RunControlPlaneComparison models each medium's actuation latency (the
// sounding itself costs 1 ms on all of them) and measures what a greedy
// controller achieves within the walking-pace coherence budget.
func RunControlPlaneComparison(seed uint64) (*ControlPlaneResult, error) {
	media := []struct {
		name string
		lat  time.Duration
	}{
		// Wires between array subsets: microseconds.
		{"wired", 100 * time.Microsecond},
		// Low-rate sub-GHz ISM band: a short command frame at ~100 kb/s.
		{"low-rate ISM", 3 * time.Millisecond},
		// Whitespace: similar rate, longer frames/duty cycling.
		{"whitespace", 8 * time.Millisecond},
		// Ultrasound: room-scoped by design, but sound crosses a 10 m
		// room in ~30 ms.
		{"ultrasound", 30 * time.Millisecond},
		// The prototype's host-in-the-loop switching.
		{"prototype", radio.PrototypeTiming.PerMeasurement + radio.PrototypeTiming.SwitchLatency},
	}
	const soundingCost = time.Millisecond

	res := &ControlPlaneResult{}
	for _, m := range media {
		timing := radio.Timing{PerMeasurement: soundingCost, SwitchLatency: m.lat}
		walk := control.CoherenceBudgetAtSpeed(0.5, 2.462e9, timing)
		run := control.CoherenceBudgetAtSpeed(6, 2.462e9, timing)

		link, err := DefaultSISO(seed).Build()
		if err != nil {
			return nil, err
		}
		ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}, Timing: timing}
		base, ok := link.Array.AllTerminated()
		if !ok {
			base = make([]int, link.Array.N())
		}
		baseline, err := ev.Eval(base)
		if err != nil {
			return nil, err
		}
		rng := newSeededRand(seed, uint64(len(res.Rows)+1))
		r, err := instrument(control.Greedy{Rng: rng, Restarts: 2}).Search(link.Array, ev.Eval, walk)
		if err != nil && r == nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ControlPlaneRow{
			Medium:           m.name,
			ActuationLatency: m.lat,
			PerMeasurement:   soundingCost + m.lat,
			WalkBudget:       walk,
			RunBudget:        run,
			GainAtWalkDB:     r.BestScore - baseline,
		})
	}
	return res, nil
}

// Print renders the comparison.
func (r *ControlPlaneResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Control-plane candidates (§4.2): actuation latency vs achievable gain\n")
	fmt.Fprintf(w, "(1 ms sounding per measurement; budgets from Tc = 9/16πfd at 2.462 GHz)\n\n")
	fmt.Fprintf(w, "%-14s  %-12s  %-12s  %-12s  %-12s  %-14s\n",
		"medium", "actuation", "per-meas", "walk budget", "run budget", "gain@walk dB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s  %-12v  %-12v  %-12d  %-12d  %-14.2f\n",
			row.Medium, row.ActuationLatency, row.PerMeasurement,
			row.WalkBudget, row.RunBudget, row.GainAtWalkDB)
	}
}
