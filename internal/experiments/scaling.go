package experiments

import (
	"fmt"
	"io"
	"time"

	"press/internal/element"
	"press/internal/radio"
	"press/internal/stats"
)

// MIMOScalingRow is one MIMO dimension's outcome.
type MIMOScalingRow struct {
	Dim int
	// BestMedianDB/WorstMedianDB are the per-config condition-number
	// medians at the extremes; SpreadDB their difference — PRESS's grip
	// on the channel conditioning.
	BestMedianDB, WorstMedianDB, SpreadDB float64
}

// MIMOScalingResult tests the §3.2.3 prediction: "we anticipate the
// impact of the PRESS elements to increase as the MIMO channel dimension
// increases past 2×2, as previously shown [21, 37]".
type MIMOScalingResult struct {
	Rows []MIMOScalingRow
}

// RunMIMOScaling sweeps all 64 configurations at each MIMO dimension and
// reports the condition-number spread PRESS commands.
func RunMIMOScaling(seed uint64, dims []int, snapshots int) (*MIMOScalingResult, error) {
	if len(dims) == 0 {
		dims = []int{2, 3, 4}
	}
	if snapshots < 1 {
		snapshots = 10
	}
	res := &MIMOScalingResult{}
	for _, dim := range dims {
		ml, err := MIMOScenario{Seed: seed, NumElements: 3, Snapshots: snapshots, Dim: dim}.Build()
		if err != nil {
			return nil, err
		}
		best, worst := 0.0, 0.0
		first := true
		var sweepErr error
		var at time.Duration
		ml.Array.EachConfig(func(_ int, c element.Config) bool {
			ch, err := ml.MeasureAveraged(c, snapshots, radio.PrototypeTiming, at)
			if err != nil {
				sweepErr = err
				return false
			}
			at += time.Duration(snapshots) * radio.PrototypeTiming.PerMeasurement
			cond := ch.CondProfileDBProf(profC())
			observeCondProfile(cond)
			med := stats.Median(cond)
			if first || med < best {
				best = med
			}
			if first || med > worst {
				worst = med
			}
			first = false
			return true
		})
		if sweepErr != nil {
			return nil, sweepErr
		}
		res.Rows = append(res.Rows, MIMOScalingRow{
			Dim:           dim,
			BestMedianDB:  best,
			WorstMedianDB: worst,
			SpreadDB:      worst - best,
		})
	}
	return res, nil
}

// Print renders the table.
func (r *MIMOScalingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "MIMO dimension scaling (§3.2.3 prediction): PRESS's conditioning control vs N×N\n\n")
	fmt.Fprintf(w, "%-6s  %-14s  %-14s  %-10s\n", "dim", "best median dB", "worst median dB", "spread dB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d  %-14.2f  %-15.2f  %-10.2f\n",
			row.Dim, row.BestMedianDB, row.WorstMedianDB, row.SpreadDB)
	}
	fmt.Fprintf(w, "\nPaper: \"we anticipate the impact of the PRESS elements to increase as the\n")
	fmt.Fprintf(w, "MIMO channel dimension increases past 2×2\".\n")
}

// FaultToleranceRow is one failure level's outcome.
type FaultToleranceRow struct {
	// Failed counts broken elements (of 6).
	Failed int
	// MeasuredGainDB is the greedy (measurement-driven) max-min-SNR gain
	// over the healthy-terminated baseline under the faults.
	MeasuredGainDB float64
	// ModelGainDB is the model-guided searcher's gain, whose model does
	// NOT know about the faults.
	ModelGainDB float64
}

// FaultToleranceResult tests the §2 operational challenge ("how to
// deploy, power, and maintain the PRESS array"): does the system degrade
// gracefully as wall elements fail, and does closed-loop measurement
// route around failures that an offline model cannot see?
type FaultToleranceResult struct {
	Rows []FaultToleranceRow
}

// RunFaultTolerance breaks 0, 2 and 4 of 6 elements (alternating stuck
// and dead) and compares measurement-driven vs model-driven control.
func RunFaultTolerance(seed uint64) (*FaultToleranceResult, error) {
	res := &FaultToleranceResult{}
	for _, failed := range []int{0, 2, 4} {
		faults := element.Faults{}
		for i := 0; i < failed; i++ {
			if i%2 == 0 {
				faults[i] = element.Fault{Kind: element.StuckAt, State: 2}
			} else {
				faults[i] = element.Fault{Kind: element.Dead}
			}
		}
		measured, model, err := faultGains(seed, faults)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FaultToleranceRow{
			Failed:         failed,
			MeasuredGainDB: measured,
			ModelGainDB:    model,
		})
	}
	return res, nil
}

// Print renders the table.
func (r *FaultToleranceResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fault tolerance (§2 operational challenges): 6-element array, broken elements\n")
	fmt.Fprintf(w, "stuck or dead; the controller is not told which\n\n")
	fmt.Fprintf(w, "%-8s  %-22s  %-20s\n", "failed", "measured-loop gain dB", "model-loop gain dB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d  %-22.2f  %-20.2f\n", row.Failed, row.MeasuredGainDB, row.ModelGainDB)
	}
	fmt.Fprintf(w, "\nClosed-loop measurement degrades gracefully; the offline model, blind to\n")
	fmt.Fprintf(w, "the faults, loses more of its edge as failures accumulate.\n")
}
