package experiments

import (
	"fmt"
	"io"

	"press/internal/radio"
	"press/internal/stats"
	"press/internal/trace"
)

// RecordSweepRecord measures the placement-(e) campaign (the dataset
// behind Figures 4–6) and returns it as a trace.Record. When the
// process-wide observer carries a TraceLog (-trace), each measurement
// row gets a trace ID joining it to its "radio/measure" span.
func RecordSweepRecord(seed uint64, trials int) (*trace.Record, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiments: record needs ≥1 trial")
	}
	link, err := DefaultSISO(seed).Build()
	if err != nil {
		return nil, err
	}
	swept, err := link.SweepTrials(radio.PrototypeTiming, trials)
	if err != nil {
		return nil, err
	}
	return trace.FromSweepTrials(link, swept,
		fmt.Sprintf("PRESS sweep, placement seed %d, %d trials, 64 configs", seed, trials))
}

// RecordSweep runs RecordSweepRecord and serializes the result with
// internal/trace, so the analyses can be re-run offline — or swapped
// for a record captured on real hardware with the same schema.
func RecordSweep(seed uint64, trials int, w io.Writer) error {
	rec, err := RecordSweepRecord(seed, trials)
	if err != nil {
		return err
	}
	return rec.Save(w)
}

// ReplayAnalysis loads a recorded sweep and re-runs the Figure 5/6
// statistics on it, printing the same headline rows the live harnesses
// produce.
func ReplayAnalysis(r io.Reader, w io.Writer) error {
	rec, err := trace.Load(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Replaying recorded sweep: %s\n", rec.Description)
	fmt.Fprintf(w, "%d configurations × %d trials × %d subcarriers\n\n",
		len(rec.ConfigNames), len(rec.Trials), rec.NumSubcarriers())

	var (
		maxMove          int
		beyond3, pairs   int
		ge10, deltaPairs int
		below20, cfgs    int
	)
	for ti := range rec.Trials {
		curves, err := rec.Curves(ti)
		if err != nil {
			return err
		}
		// Drop unmeasured configs (nil curves) for the statistics.
		var present [][]float64
		for _, c := range curves {
			if c != nil {
				present = append(present, c)
			}
		}
		for _, m := range stats.PairwiseNullMovements(present, stats.DefaultNullDepthDB) {
			pairs++
			if m > 3 {
				beyond3++
			}
			if int(m) > maxMove {
				maxMove = int(m)
			}
		}
		for _, d := range stats.PairwiseMinSNRChanges(present) {
			deltaPairs++
			if d >= 10 {
				ge10++
			}
		}
		for _, m := range stats.MinPerCurve(present) {
			cfgs++
			if m < 20 {
				below20++
			}
		}
	}
	fmt.Fprintf(w, "Figure 5 (from record): max null movement = %d subcarriers\n", maxMove)
	if pairs > 0 {
		fmt.Fprintf(w, "Figure 5 (from record): fraction of pairs moving >3 subcarriers = %.3f\n",
			float64(beyond3)/float64(pairs))
	}
	if deltaPairs > 0 {
		fmt.Fprintf(w, "Figure 6 (from record): fraction of changes ≥10 dB = %.3f\n",
			float64(ge10)/float64(deltaPairs))
	}
	if cfgs > 0 {
		fmt.Fprintf(w, "Figure 6 (from record): fraction of configs below 20 dB = %.3f\n",
			float64(below20)/float64(cfgs))
	}
	return nil
}
