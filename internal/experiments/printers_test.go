package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllPrinters runs each harness at reduced size and checks that its
// textual rendering and CSV export carry the figure's key content — the
// rows/series cmd/pressim shows the user.
func TestAllPrinters(t *testing.T) {
	var buf bytes.Buffer
	expect := func(name string, wants ...string) {
		t.Helper()
		s := buf.String()
		for _, w := range wants {
			if !strings.Contains(s, w) {
				t.Errorf("%s output missing %q:\n%.400s", name, w, s)
			}
		}
		buf.Reset()
	}

	f4, err := RunFig4(Fig4Options{Placements: 2, Trials: 2, BaseSeed: 438})
	if err != nil {
		t.Fatal(err)
	}
	f4.Print(&buf)
	expect("fig4", "Figure 4", "Placement (a)", "paper: 18.6 dB")
	if err := f4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	expect("fig4 csv", "placement,config_a", "(a)")

	f5, err := RunFig5(Fig5Options{Seed: 442, Trials: 2, NullDepthDB: 5})
	if err != nil {
		t.Fatal(err)
	}
	f5.Print(&buf)
	expect("fig5", "CCDF of null movement", "trial0", "paper: ≈9")
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	expect("fig5 csv", "trial,movement_subcarriers,ccdf")

	f6, err := RunFig6(Fig6Options{Seed: 442, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	f6.Print(&buf)
	expect("fig6", "Figure 6 left", "Figure 6 right", "paper: ≈0.38")
	if err := f6.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	expect("fig6 csv", "panel,trial,x_db,ccdf", "delta")

	f7, err := RunFig7(Fig7Options{Seed: 715, MaxSeedTries: 1, MinContrastDB: 3})
	if err != nil {
		t.Fatal(err)
	}
	f7.Print(&buf)
	expect("fig7", "opposite frequency selectivity", "contrast")
	if err := f7.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	expect("fig7 csv", "subcarrier,snr_lower_cfg_db")

	f8, err := RunFig8(Fig8Options{Seed: 822, Snapshots: 3, Repetitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	f8.Print(&buf)
	expect("fig8", "condition number", "Best (lowest) median", "paper: ≈1.5 dB")
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	expect("fig8 csv", "series,config,x_cond_db,cdf", "best", "worst")

	los, err := RunLoS(LoSOptions{Seed: 441, Trials: 1, ActiveGainDB: 30})
	if err != nil {
		t.Fatal(err)
	}
	los.Print(&buf)
	expect("los", "Line-of-sight", "paper: < 2 dB", "Active elements")

	RunCoherence().Print(&buf)
	expect("coherence", "prototype budget", "4.992s")

	st, err := RunStaleness(442, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	st.Print(&buf)
	expect("staleness", "regret dB", "static")

	a1, err := RunPhaseAblation(442, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	a1.Print(&buf)
	expect("a1", "Ablation A1", "phases")

	a2, err := RunElementAblation(442, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	a2.Print(&buf)
	expect("a2", "Ablation A2", "parabolic", "omni")

	a4, err := RunContinuousAblation(442, 80)
	if err != nil {
		t.Fatal(err)
	}
	a4.Print(&buf)
	expect("a4", "Ablation A4", "SPSA", "quantized")

	ms, err := RunMIMOScaling(822, []int{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ms.Print(&buf)
	expect("scaling", "MIMO dimension scaling", "spread dB")

	as, err := RunArrayScaling(442, []int{4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	as.Print(&buf)
	expect("arrayscale", "Array scaling", "hierarch")

	ft, err := RunFaultTolerance(442)
	if err != nil {
		t.Fatal(err)
	}
	ft.Print(&buf)
	expect("faults", "Fault tolerance", "measured-loop")
}

// TestDefaultOptionConstructors pins the calibrated defaults so an
// accidental edit cannot silently change every reproduced figure.
func TestDefaultOptionConstructors(t *testing.T) {
	if o := DefaultFig4(); o.Placements != 8 || o.Trials != 10 || o.BaseSeed != 438 {
		t.Errorf("DefaultFig4 = %+v", o)
	}
	if o := DefaultFig5(); o.Seed != 442 || o.Trials != 10 {
		t.Errorf("DefaultFig5 = %+v", o)
	}
	if o := DefaultFig6(); o.Seed != 442 || o.Trials != 10 {
		t.Errorf("DefaultFig6 = %+v", o)
	}
	if o := DefaultFig7(); o.Seed != 700 || o.MinContrastDB != 3 {
		t.Errorf("DefaultFig7 = %+v", o)
	}
	if o := DefaultFig8(); o.Seed != 822 || o.Snapshots != 50 || o.Repetitions != 5 {
		t.Errorf("DefaultFig8 = %+v", o)
	}
	if o := DefaultLoS(); o.Seed != 441 {
		t.Errorf("DefaultLoS = %+v", o)
	}
	if o := DefaultMIMO(7); o.NumElements != 3 || o.Snapshots != 50 {
		t.Errorf("DefaultMIMO = %+v", o)
	}
	if s := DefaultSISO(7); s.NumElements != 3 || s.ScattererAmp != 35 || s.NumScatterers != 10 {
		t.Errorf("DefaultSISO = %+v", s)
	}
}
