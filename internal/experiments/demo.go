package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"press/internal/control"
	"press/internal/controlplane"
)

// DemoOptions parameterizes the deadline-tracing demo: a real-time
// sense→search→actuate control loop run against the coherence budget of
// a moving endpoint, with an optional injected stall to force deadline
// misses on purpose.
type DemoOptions struct {
	// Seed drives the scenario and per-loop search RNGs (0 = 442).
	Seed uint64
	// Loops is the number of control-loop iterations (0 = 20).
	Loops int
	// SpeedMph sets the endpoint speed whose coherence time becomes the
	// per-loop deadline (0 = static endpoint, no deadline).
	SpeedMph float64
	// SlowPhase, when positive, stalls the sense phase of every loop by
	// this much wall time — the knob that makes loops miss their
	// deadline so /tracez and the burn-rate alert have something to show.
	SlowPhase time.Duration
	// Budget is the per-loop measurement budget (0 = 12).
	Budget int
}

// DefaultDemo returns the calibrated demo: 20 loops chasing a running
// endpoint (6 mph ≈ 8 ms coherence time at 2.462 GHz), no stall.
func DefaultDemo() DemoOptions {
	return DemoOptions{Seed: 442, Loops: 20, SpeedMph: 6, Budget: 12}
}

// DemoLoopRow is one control-loop iteration's timing verdict.
type DemoLoopRow struct {
	Seq     int
	Latency time.Duration
	Slack   time.Duration
	Missed  bool
	GainDB  float64
}

// DemoResult carries the per-loop rows and the deadline they were
// judged against.
type DemoResult struct {
	Deadline  time.Duration
	SpeedMph  float64
	SlowPhase time.Duration
	Loops     []DemoLoopRow
	Misses    int
}

// MissRatio is the fraction of loops that overran their deadline.
func (r *DemoResult) MissRatio() float64 {
	if len(r.Loops) == 0 {
		return 0
	}
	return float64(r.Misses) / float64(len(r.Loops))
}

// Print writes the per-loop table and the deadline-miss summary.
func (r *DemoResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Control-loop deadline demo: sense→search→actuate against the coherence budget")
	if r.Deadline > 0 {
		fmt.Fprintf(w, "deadline %v (%.1f mph endpoint at 2.462 GHz)", r.Deadline.Round(time.Microsecond), r.SpeedMph)
	} else {
		fmt.Fprintf(w, "deadline none (static endpoint)")
	}
	if r.SlowPhase > 0 {
		fmt.Fprintf(w, ", injected %v stall per loop", r.SlowPhase)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%4s  %10s  %10s  %-6s  %7s\n", "loop", "latency_ms", "slack_ms", "status", "gain_db")
	for _, row := range r.Loops {
		status := "ok"
		if row.Missed {
			status = "MISS"
		}
		fmt.Fprintf(w, "%4d  %10.3f  %10.3f  %-6s  %7.2f\n",
			row.Seq, float64(row.Latency)/1e6, float64(row.Slack)/1e6, status, row.GainDB)
	}
	fmt.Fprintf(w, "\nloops %d  misses %d  miss ratio %.2f\n", len(r.Loops), r.Misses, r.MissRatio())
}

// RunDemo drives Loops real control-loop iterations over the §3.2 NLoS
// testbed: sense (evaluate the standing configuration, plus the optional
// stall), search (a short greedy run under the measurement budget), and
// actuate (push the winner to a control-plane agent and await its ack).
// Each iteration runs under the ambient scope's loop tracer when one is
// attached — producing the span trees, deadline verdicts, and KindLoop
// flight frames the /tracez and `pressctl loops` surfaces render — but
// the experiment times loops itself so the printed miss ratio works with
// telemetry off too. Unlike the rest of the package this harness is
// wall-clock-real by design: latency depends on the host, only the
// searched configurations are deterministic per seed.
func RunDemo(o DemoOptions) (*DemoResult, error) {
	if o.Seed == 0 {
		o.Seed = 442
	}
	if o.Loops <= 0 {
		o.Loops = 20
	}
	if o.Budget <= 0 {
		o.Budget = 12
	}
	if o.SlowPhase < 0 {
		return nil, fmt.Errorf("experiments: negative slow-phase %v", o.SlowPhase)
	}
	deadline := control.CoherenceTimeAtSpeed(o.SpeedMph, 2.462e9)

	sc := CurrentScope()
	tr := sc.Tracer()
	// The demo owns the loop deadline: the tracer judges every loop
	// against the same coherence budget the printed table uses.
	tr.SetDeadline(deadline)

	scen := DefaultSISO(o.Seed)
	scen.Scope = sc
	link, err := scen.Build()
	if err != nil {
		return nil, err
	}
	ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}}

	// A real (in-process) control plane so actuation has an ack round
	// trip for the tracer's actuate/ack spans.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aEnd, bEnd := controlplane.NewLossyPipe(controlplane.LossyConfig{Seed: o.Seed})
	agent := controlplane.NewAgent(1, link.Array)
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = agent.Serve(ctx, aEnd)
	}()
	defer func() {
		cancel()
		aEnd.Close()
		bEnd.Close()
		<-served
	}()
	ctrl := controlplane.NewController(bEnd)
	ctrl.AttachScope(sc)
	hctx, hcancel := context.WithTimeout(ctx, 2*time.Second)
	defer hcancel()
	if err := ctrl.Handshake(hctx); err != nil {
		return nil, err
	}

	cur, ok := link.Array.AllTerminated()
	if !ok {
		cur = make([]int, link.Array.N())
	}
	res := &DemoResult{Deadline: deadline, SpeedMph: o.SpeedMph, SlowPhase: o.SlowPhase}
	for i := 0; i < o.Loops; i++ {
		start := time.Now()
		l := tr.StartLoop("demo")

		sense := l.Phase("sense")
		baseline, err := ev.Eval(cur)
		if o.SlowPhase > 0 {
			time.Sleep(o.SlowPhase)
		}
		sense.End()
		if err != nil {
			l.End()
			return nil, err
		}

		searcher := instrument(control.Greedy{Rng: newSeededRand(o.Seed, uint64(i)+1), Restarts: 1})
		r, err := searcher.Search(link.Array, ev.Eval, o.Budget)
		if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
			l.End()
			return nil, err
		}

		if err := ctrl.SetConfig(ctx, r.Best); err != nil {
			l.End()
			return nil, err
		}
		cur = r.Best
		l.End()

		lat := time.Since(start)
		row := DemoLoopRow{Seq: i + 1, Latency: lat, GainDB: r.BestScore - baseline}
		if deadline > 0 {
			row.Slack = deadline - lat
			row.Missed = lat > deadline
		}
		if row.Missed {
			res.Misses++
		}
		res.Loops = append(res.Loops, row)
	}
	return res, nil
}
