package experiments

import (
	"bytes"
	"testing"
)

// TestExperimentsDeterministic pins the reproducibility guarantee the
// README makes: identical options produce bit-identical results, across
// the whole harness surface. Every figure in EXPERIMENTS.md depends on
// this.
func TestExperimentsDeterministic(t *testing.T) {
	t.Run("fig4", func(t *testing.T) {
		o := Fig4Options{Placements: 2, Trials: 2, BaseSeed: 438}
		a, err := RunFig4(o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFig4(o)
		if err != nil {
			t.Fatal(err)
		}
		if a.LargestMeanChangeDB != b.LargestMeanChangeDB ||
			a.LargestSingleChangeDB != b.LargestSingleChangeDB {
			t.Error("fig4 headlines differ between runs")
		}
		for p := range a.Placements {
			for k := range a.Placements[p].SNRA {
				if a.Placements[p].SNRA[k] != b.Placements[p].SNRA[k] {
					t.Fatalf("fig4 placement %d subcarrier %d differs", p, k)
				}
			}
		}
	})

	t.Run("fig5", func(t *testing.T) {
		o := Fig5Options{Seed: 442, Trials: 2, NullDepthDB: 5}
		a, err := RunFig5(o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFig5(o)
		if err != nil {
			t.Fatal(err)
		}
		if a.MaxMovement != b.MaxMovement || a.FracBeyond3 != b.FracBeyond3 {
			t.Error("fig5 statistics differ between runs")
		}
	})

	t.Run("fig8", func(t *testing.T) {
		o := Fig8Options{Seed: 822, Snapshots: 3, Repetitions: 1}
		a, err := RunFig8(o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFig8(o)
		if err != nil {
			t.Fatal(err)
		}
		if a.SpreadDB != b.SpreadDB || a.BestIdx != b.BestIdx || a.WorstIdx != b.WorstIdx {
			t.Error("fig8 results differ between runs")
		}
	})

	t.Run("record", func(t *testing.T) {
		var r1, r2 bytes.Buffer
		if err := RecordSweep(442, 1, &r1); err != nil {
			t.Fatal(err)
		}
		if err := RecordSweep(442, 1, &r2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
			t.Error("recorded sweeps differ byte-for-byte between runs")
		}
	})
}
