package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"press/internal/control"
	"press/internal/element"
)

// ContinuousAblationResult tests the §4.1 endgame ("plan on testing with
// continuously-variable phase shifting hardware"): how much does
// continuous phase control buy over the discrete stub banks, per
// measurement spent?
type ContinuousAblationResult struct {
	// BaselineDB is the terminated-array worst-subcarrier SNR.
	BaselineDB float64
	// Discrete3DB is the exhaustive optimum over the SP4T bank
	// (3 phases + off, 64 configs) and Discrete8DB over the 8-phase+off
	// bank via greedy under the same budget as SPSA.
	Discrete3DB float64
	Discrete8DB float64
	// ContinuousDB is SPSA's optimum over continuous phases.
	ContinuousDB float64
	// QuantizedDB is the continuous winner quantized back onto the SP4T
	// bank and re-measured — what a continuous-trained controller gets
	// when deployed on discrete hardware.
	QuantizedDB float64
	// Budget is the measurement budget the 8-phase and continuous runs
	// observed.
	Budget int
}

// RunContinuousAblation runs the four-way comparison at one placement.
func RunContinuousAblation(seed uint64, budget int) (*ContinuousAblationResult, error) {
	if budget < 1 {
		budget = 200
	}
	res := &ContinuousAblationResult{Budget: budget}

	// Discrete SP4T: exhaustive over 64.
	scen := DefaultSISO(seed)
	link, err := scen.Build()
	if err != nil {
		return nil, err
	}
	base, best3, _, err := baselineAndBest(link)
	if err != nil {
		return nil, err
	}
	res.BaselineDB, res.Discrete3DB = base, best3

	// Discrete 8-phase + off under the budget.
	scen8 := DefaultSISO(seed)
	scen8.ElementStates = element.NPhaseStates(8, true)
	link8, err := scen8.Build()
	if err != nil {
		return nil, err
	}
	ev8 := &control.LinkEvaluator{Link: link8, Objective: control.MaxMinSNR{}}
	r8, err := (control.Greedy{Rng: rand.New(rand.NewPCG(seed, 81)), Restarts: 4}).
		Search(link8.Array, ev8.Eval, budget)
	if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
		return nil, err
	}
	res.Discrete8DB = r8.BestScore

	// Continuous phases via SPSA under the same budget.
	scenC := DefaultSISO(seed)
	linkC, err := scenC.Build()
	if err != nil {
		return nil, err
	}
	evC := &control.ContinuousLinkEvaluator{Link: linkC, Objective: control.MaxMinSNR{}}
	rc, err := (control.SPSA{Rng: rand.New(rand.NewPCG(seed, 82)), Iterations: budget / 2, Restarts: 2}).
		Search(linkC.Array, evC.Eval, budget)
	if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
		return nil, err
	}
	res.ContinuousDB = rc.BestScore

	// Quantize the continuous winner onto the SP4T bank and re-measure.
	q := linkC.Array.QuantizeContinuous(rc.Best)
	csi, err := linkC.MeasureCSI(q, 0)
	if err != nil {
		return nil, err
	}
	res.QuantizedDB = (control.MaxMinSNR{}).Score(csi)
	return res, nil
}

// Print renders the comparison.
func (r *ContinuousAblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A4 (§4.1): continuously-variable phases vs discrete banks (max-min SNR)\n")
	fmt.Fprintf(w, "%-34s  %-10s\n", "controller", "best dB")
	fmt.Fprintf(w, "%-34s  %-10.2f\n", "terminated baseline", r.BaselineDB)
	fmt.Fprintf(w, "%-34s  %-10.2f\n", "SP4T bank, exhaustive (64 meas)", r.Discrete3DB)
	fmt.Fprintf(w, "%-34s  %-10.2f\n", fmt.Sprintf("8-phase bank, greedy (%d meas)", r.Budget), r.Discrete8DB)
	fmt.Fprintf(w, "%-34s  %-10.2f\n", fmt.Sprintf("continuous, SPSA (%d meas)", r.Budget), r.ContinuousDB)
	fmt.Fprintf(w, "%-34s  %-10.2f\n", "continuous winner quantized to SP4T", r.QuantizedDB)
}
