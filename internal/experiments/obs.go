package experiments

import (
	"sync/atomic"

	"press/internal/control"
	"press/internal/obs"
	"press/internal/obs/health"
	"press/internal/radio"
)

// observerState carries the telemetry sinks an embedding CLI installs.
type observerState struct {
	reg *obs.Registry
	log *obs.Logger
}

var currentObserver atomic.Pointer[observerState]

// SetObserver installs a process-wide telemetry registry and logger for
// every harness in this package: scenario Builds attach the registry to
// the links and environments they create, and search call sites wrap
// their searchers with control.Instrument. Pass nil, nil to clear.
//
// A package-level observer (rather than per-harness parameters) keeps
// the dozens of Run* signatures stable; the harnesses run one at a time
// from the CLIs, so a single process-wide sink is the right granularity.
func SetObserver(reg *obs.Registry, log *obs.Logger) {
	if reg == nil && log == nil {
		currentObserver.Store(nil)
		return
	}
	currentObserver.Store(&observerState{reg: reg, log: log})
}

// obsRegistry returns the installed registry, or nil when telemetry is
// off — safe to assign to Link.Obs / Environment.Obs either way.
func obsRegistry() *obs.Registry {
	if o := currentObserver.Load(); o != nil {
		return o.reg
	}
	return nil
}

// obsLogger returns the installed logger, or nil.
func obsLogger() *obs.Logger {
	if o := currentObserver.Load(); o != nil {
		return o.log
	}
	return nil
}

// instrument wraps s with the installed observer and health monitor;
// with neither it returns s unchanged.
func instrument(s control.Searcher) control.Searcher {
	return control.InstrumentHealth(s, obsRegistry(), obsLogger(), healthMon())
}

var currentHealth atomic.Pointer[health.Monitor]

// SetHealth installs a process-wide channel-health monitor: scenario
// Builds hook it to every link's CSI stream, search call sites feed it
// best-objective updates, and the MIMO harnesses push condition-number
// profiles. Pass nil to clear. The same single-process rationale as
// SetObserver applies.
func SetHealth(h *health.Monitor) { currentHealth.Store(h) }

// healthMon returns the installed monitor, or nil when health telemetry
// is off (every consumer is nil-safe).
func healthMon() *health.Monitor { return currentHealth.Load() }

// attachHealth points a link's CSI hook at the installed monitor. With
// no monitor the hook stays nil and measurement stays zero-overhead.
func attachHealth(link *radio.Link) {
	if h := healthMon(); h != nil {
		link.OnCSI = h.ObserveSNR
	}
}
