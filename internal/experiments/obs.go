package experiments

import (
	"sync/atomic"

	"press/internal/control"
	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/health"
	"press/internal/obs/prof"
	"press/internal/radio"
	"press/internal/stats"
)

// observerState carries the telemetry sinks an embedding CLI installs.
type observerState struct {
	reg *obs.Registry
	log *obs.Logger
}

var currentObserver atomic.Pointer[observerState]

// SetObserver installs a process-wide telemetry registry and logger for
// every harness in this package: scenario Builds attach the registry to
// the links and environments they create, and search call sites wrap
// their searchers with control.Instrument. Pass nil, nil to clear.
//
// A package-level observer (rather than per-harness parameters) keeps
// the dozens of Run* signatures stable; the harnesses run one at a time
// from the CLIs, so a single process-wide sink is the right granularity.
func SetObserver(reg *obs.Registry, log *obs.Logger) {
	if reg == nil && log == nil {
		currentObserver.Store(nil)
		return
	}
	currentObserver.Store(&observerState{reg: reg, log: log})
}

// obsRegistry returns the installed registry, or nil when telemetry is
// off — safe to assign to Link.Obs / Environment.Obs either way.
func obsRegistry() *obs.Registry {
	if o := currentObserver.Load(); o != nil {
		return o.reg
	}
	return nil
}

// obsLogger returns the installed logger, or nil.
func obsLogger() *obs.Logger {
	if o := currentObserver.Load(); o != nil {
		return o.log
	}
	return nil
}

// instrument wraps s with the installed observer, health monitor,
// flight recorder, and work-accounting collector; with none of them it
// returns s unchanged.
func instrument(s control.Searcher) control.Searcher {
	return control.InstrumentProf(s, obsRegistry(), obsLogger(), healthMon(), flightRec(), profC())
}

var currentHealth atomic.Pointer[health.Monitor]

// SetHealth installs a process-wide channel-health monitor: scenario
// Builds hook it to every link's CSI stream, search call sites feed it
// best-objective updates, and the MIMO harnesses push condition-number
// profiles. Pass nil to clear. The same single-process rationale as
// SetObserver applies.
func SetHealth(h *health.Monitor) { currentHealth.Store(h) }

// healthMon returns the installed monitor, or nil when health telemetry
// is off (every consumer is nil-safe).
func healthMon() *health.Monitor { return currentHealth.Load() }

var currentFlight atomic.Pointer[flight.Recorder]

// SetFlight installs a process-wide flight recorder: scenario Builds
// chain it onto every link's CSI stream, search call sites persist
// per-evaluation decisions, and the MIMO harnesses log condition-number
// KPI samples. Pass nil to clear. The same single-process rationale as
// SetObserver applies.
func SetFlight(rec *flight.Recorder) { currentFlight.Store(rec) }

// flightRec returns the installed recorder, or nil when run logging is
// off (every consumer is nil-safe).
func flightRec() *flight.Recorder { return currentFlight.Load() }

var currentProf atomic.Pointer[prof.Collector]

// SetProf installs a process-wide work-accounting collector: scenario
// Builds attach it to the environments and links they create, and search
// call sites account their evaluation loops to the search_eval phase.
// Pass nil to clear. The same single-process rationale as SetObserver
// applies.
func SetProf(c *prof.Collector) { currentProf.Store(c) }

// profC returns the installed collector, or nil when phase accounting is
// off (every consumer is nil-safe).
func profC() *prof.Collector { return currentProf.Load() }

// attachObservers points a link's CSI hook at the installed health
// monitor and flight recorder. With neither the hook stays nil and
// measurement stays zero-overhead.
func attachObservers(link *radio.Link) {
	h, rec := healthMon(), flightRec()
	switch {
	case h != nil && rec != nil:
		link.OnCSI = func(snrDB []float64) {
			h.ObserveSNR(snrDB)
			rec.RecordCSI(snrDB)
		}
	case h != nil:
		link.OnCSI = h.ObserveSNR
	case rec != nil:
		link.OnCSI = rec.RecordCSI
	}
}

// observeCondProfile fans a per-subcarrier condition-number profile (dB)
// out to the health monitor and, as its median, the flight log.
func observeCondProfile(condDB []float64) {
	healthMon().ObserveCondProfile(condDB)
	if rec := flightRec(); rec != nil && len(condDB) > 0 {
		rec.RecordKPI(flight.KPICondDBMedian, stats.Median(condDB))
	}
}
