package experiments

import (
	"sync/atomic"

	"press/internal/control"
	"press/internal/obs"
)

// observerState carries the telemetry sinks an embedding CLI installs.
type observerState struct {
	reg *obs.Registry
	log *obs.Logger
}

var currentObserver atomic.Pointer[observerState]

// SetObserver installs a process-wide telemetry registry and logger for
// every harness in this package: scenario Builds attach the registry to
// the links and environments they create, and search call sites wrap
// their searchers with control.Instrument. Pass nil, nil to clear.
//
// A package-level observer (rather than per-harness parameters) keeps
// the dozens of Run* signatures stable; the harnesses run one at a time
// from the CLIs, so a single process-wide sink is the right granularity.
func SetObserver(reg *obs.Registry, log *obs.Logger) {
	if reg == nil && log == nil {
		currentObserver.Store(nil)
		return
	}
	currentObserver.Store(&observerState{reg: reg, log: log})
}

// obsRegistry returns the installed registry, or nil when telemetry is
// off — safe to assign to Link.Obs / Environment.Obs either way.
func obsRegistry() *obs.Registry {
	if o := currentObserver.Load(); o != nil {
		return o.reg
	}
	return nil
}

// obsLogger returns the installed logger, or nil.
func obsLogger() *obs.Logger {
	if o := currentObserver.Load(); o != nil {
		return o.log
	}
	return nil
}

// instrument wraps s with the installed observer; with no observer it
// returns s unchanged.
func instrument(s control.Searcher) control.Searcher {
	return control.Instrument(s, obsRegistry(), obsLogger())
}
