package experiments

import (
	"sync/atomic"

	"press/internal/control"
	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/health"
	"press/internal/obs/prof"
	"press/internal/obs/scope"
	"press/internal/radio"
)

// currentScope is the ambient telemetry scope for harnesses that are
// not handed one explicitly. The one-shot CLIs adopt their flag-built
// process-wide stack as a single scope; session-oriented callers (the
// concurrent experiment, the future pressd daemon) pass per-session
// scopes through scenario parameters instead and leave this alone.
var currentScope atomic.Pointer[scope.Scope]

// SetScope installs the ambient telemetry scope for every harness in
// this package: scenario Builds attach its registry, health monitor,
// flight recorder, and phase collector to the links and environments
// they create, and search call sites wrap their searchers with
// control.InstrumentScope. Pass nil to clear.
//
// An ambient scope (rather than per-harness parameters) keeps the
// dozens of Run* signatures stable; harnesses that need per-session
// telemetry take an explicit *scope.Scope via their scenario instead.
func SetScope(s *scope.Scope) { currentScope.Store(s) }

// CurrentScope returns the ambient scope, nil when telemetry is off
// (every accessor on a nil scope is a valid disabled sink).
func CurrentScope() *scope.Scope { return currentScope.Load() }

// obsRegistry returns the ambient registry, or nil when telemetry is
// off — safe to assign to Link.Obs / Environment.Obs either way.
func obsRegistry() *obs.Registry { return CurrentScope().Registry() }

// obsLogger returns the ambient logger, or nil.
func obsLogger() *obs.Logger { return CurrentScope().Logger() }

// healthMon returns the ambient channel-health monitor, or nil (every
// consumer is nil-safe).
func healthMon() *health.Monitor { return CurrentScope().Health() }

// flightRec returns the ambient flight recorder, or nil (every consumer
// is nil-safe).
func flightRec() *flight.Recorder { return CurrentScope().Flight() }

// profC returns the ambient work-accounting collector, or nil (every
// consumer is nil-safe).
func profC() *prof.Collector { return CurrentScope().Prof() }

// instrument wraps s with the ambient scope's observer, health monitor,
// flight recorder, and work-accounting collector; with all of them off
// it returns s unchanged.
func instrument(s control.Searcher) control.Searcher {
	return control.InstrumentScope(s, CurrentScope())
}

// attachObservers points a link's CSI hook at the ambient scope's
// health monitor and flight recorder. With neither the hook stays nil
// and measurement stays zero-overhead.
func attachObservers(link *radio.Link) {
	if hook := CurrentScope().CSIHook(); hook != nil {
		link.OnCSI = hook
	}
}

// observeCondProfile fans a per-subcarrier condition-number profile (dB)
// out to the ambient scope's health monitor and, as its median, the
// flight log.
func observeCondProfile(condDB []float64) { CurrentScope().ObserveCondProfile(condDB) }
