package experiments

import (
	"fmt"
	"io"
	"math"

	"press/internal/radio"
)

// LoSOptions parameterizes the §3 line-of-sight preliminary experiment.
type LoSOptions struct {
	Seed   uint64
	Trials int
	// ActiveGainDB, when positive, re-runs the experiment with active
	// elements of that gain — the §2 design point for LoS links.
	ActiveGainDB float64
}

// DefaultLoS matches the paper's preliminary check.
func DefaultLoS() LoSOptions { return LoSOptions{Seed: 441, Trials: 3, ActiveGainDB: 30} }

// LoSResult quantifies how much the passive (and optionally active) array
// can move a line-of-sight channel.
type LoSResult struct {
	// PassiveMaxEffectDB is the largest per-subcarrier change of the mean
	// SNR across all configuration pairs with line of sight; the paper
	// measures < 2 dB.
	PassiveMaxEffectDB float64
	// ActiveMaxEffectDB is the same with active elements, when requested
	// (0 otherwise) — §3: "line-of-sight links require some active PRESS
	// elements".
	ActiveMaxEffectDB float64
}

// RunLoS reproduces the §3 observation: "the effect of the PRESS element
// configurations on the per-subcarrier SNR is limited to less than 2 dB
// ... as the line-of-sight signal dominates".
func RunLoS(opts LoSOptions) (*LoSResult, error) {
	if opts.Trials < 1 {
		return nil, fmt.Errorf("experiments: los needs ≥1 trial")
	}
	res := &LoSResult{}
	passive, err := losMaxEffect(opts, 0)
	if err != nil {
		return nil, err
	}
	res.PassiveMaxEffectDB = passive
	if opts.ActiveGainDB > 0 {
		active, err := losMaxEffect(opts, opts.ActiveGainDB)
		if err != nil {
			return nil, err
		}
		res.ActiveMaxEffectDB = active
	}
	return res, nil
}

// losMaxEffect sweeps the LoS scenario and returns the largest
// per-subcarrier spread of mean SNR across configurations.
func losMaxEffect(opts LoSOptions, activeGainDB float64) (float64, error) {
	scen := DefaultSISO(opts.Seed)
	scen.LineOfSight = true
	link, err := scen.Build()
	if err != nil {
		return 0, err
	}
	if activeGainDB > 0 {
		for _, e := range link.Array.Elements {
			e.ActiveGainDB = activeGainDB
			e.LossDB = 0
		}
	}
	trials, err := link.SweepTrials(radio.PrototypeTiming, opts.Trials)
	if err != nil {
		return 0, err
	}
	mean := meanCurves(trials)
	// Max over subcarriers of (max over configs − min over configs).
	var worst float64
	for k := range mean[0] {
		lo, hi := math.Inf(1), math.Inf(-1)
		for c := range mean {
			lo = math.Min(lo, mean[c][k])
			hi = math.Max(hi, mean[c][k])
		}
		worst = math.Max(worst, hi-lo)
	}
	return worst, nil
}

// Print renders the comparison.
func (r *LoSResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Line-of-sight preliminary experiment (§3)\n")
	fmt.Fprintf(w, "Passive elements, LoS link: max per-subcarrier SNR effect = %.2f dB (paper: < 2 dB)\n",
		r.PassiveMaxEffectDB)
	if r.ActiveMaxEffectDB > 0 {
		fmt.Fprintf(w, "Active elements,  LoS link: max per-subcarrier SNR effect = %.2f dB (paper: \"LoS links require some active PRESS elements\")\n",
			r.ActiveMaxEffectDB)
	}
}
