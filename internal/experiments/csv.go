package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvWrite writes rows with a header, wrapping errors with the figure
// name for diagnosis.
func csvWrite(w io.Writer, name string, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: %s csv: %w", name, err)
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("experiments: %s csv: %w", name, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: %s csv: %w", name, err)
	}
	return nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteCSV emits Figure 4 as long-form rows: placement, subcarrier, and
// the two selected configurations' SNR.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	header := []string{"placement", "config_a", "config_b", "subcarrier", "snr_a_db", "snr_b_db"}
	var rows [][]string
	for _, p := range r.Placements {
		for k := range p.SNRA {
			rows = append(rows, []string{
				p.Label, p.ConfigA, p.ConfigB, strconv.Itoa(k), f(p.SNRA[k]), f(p.SNRB[k]),
			})
		}
	}
	return csvWrite(w, "fig4", header, rows)
}

// WriteCSV emits Figure 5's per-trial CCDF curves as long-form rows.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	header := []string{"trial", "movement_subcarriers", "ccdf"}
	var rows [][]string
	for t, e := range r.PerTrial {
		for m := 0; m <= r.MaxMovement; m++ {
			rows = append(rows, []string{
				strconv.Itoa(t), strconv.Itoa(m), f(e.CCDF(float64(m) - 0.5)),
			})
		}
	}
	return csvWrite(w, "fig5", header, rows)
}

// WriteCSV emits both Figure 6 panels: panel "delta" (pooled CCDF of
// min-SNR changes) and panel "min" (per-trial CCDF of min SNR).
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	header := []string{"panel", "trial", "x_db", "ccdf"}
	var rows [][]string
	for _, p := range r.DeltaMin.CCDFPoints() {
		rows = append(rows, []string{"delta", "-", f(p.X), f(p.Y)})
	}
	for t, e := range r.PerTrialMin {
		for _, p := range e.CCDFPoints() {
			rows = append(rows, []string{"min", strconv.Itoa(t), f(p.X), f(p.Y)})
		}
	}
	return csvWrite(w, "fig6", header, rows)
}

// WriteCSV emits Figure 7's two SNR curves.
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	header := []string{"subcarrier", "snr_lower_cfg_db", "snr_upper_cfg_db"}
	var rows [][]string
	for k := range r.SNRLower {
		rows = append(rows, []string{strconv.Itoa(k + 1), f(r.SNRLower[k]), f(r.SNRUpper[k])})
	}
	return csvWrite(w, "fig7", header, rows)
}

// WriteCSV emits Figure 8's best and worst condition-number CDFs plus the
// per-config medians.
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	header := []string{"series", "config", "x_cond_db", "cdf"}
	var rows [][]string
	emit := func(series string, cfg Fig8Config) {
		for _, p := range cfg.CDF.Points() {
			rows = append(rows, []string{series, cfg.Config, f(p.X), f(p.Y)})
		}
	}
	emit("best", r.Configs[r.BestIdx])
	emit("worst", r.Configs[r.WorstIdx])
	for _, c := range r.Configs {
		rows = append(rows, []string{"median", c.Config, f(c.MedianDB), ""})
	}
	return csvWrite(w, "fig8", header, rows)
}
