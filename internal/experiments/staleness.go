package experiments

import (
	"fmt"
	"io"

	"press/internal/element"
	"press/internal/geom"
	"press/internal/radio"
	"press/internal/rfphys"
)

// StalenessRow quantifies configuration staleness at one endpoint speed:
// the §2 problem that a slow sweep's winner is chosen against a channel
// that has already changed by the time it is applied.
type StalenessRow struct {
	SpeedMph float64
	// CoherenceMs is the channel coherence time.
	CoherenceMs float64
	// PredictedDB is the winner's min-SNR as measured during the sweep;
	// ActualDB is the same configuration re-measured at the moment the
	// sweep completes; RegretDB = Predicted − Actual.
	PredictedDB float64
	ActualDB    float64
	RegretDB    float64
	// OracleDB is the best achievable min-SNR at sweep-end (a fresh
	// exhaustive sweep frozen at that instant) — what a fast-enough
	// controller would have obtained.
	OracleDB float64
}

// StalenessResult is the sweep-staleness experiment: it turns §2's
// timing argument ("PRESS must perform the above all during the channel
// coherence time") into a measured number.
type StalenessResult struct {
	Rows []StalenessRow
	// Timing is the per-measurement model used (the prototype's).
	Timing radio.Timing
}

// RunStaleness sweeps all 64 configurations with the prototype's ~5 s
// timing while the receiver moves at each speed, then compares the
// winner's during-sweep score with its actual post-sweep performance.
func RunStaleness(seed uint64, speedsMph []float64) (*StalenessResult, error) {
	if len(speedsMph) == 0 {
		speedsMph = []float64{0, 0.5, 2, 6}
	}
	res := &StalenessResult{Timing: radio.PrototypeTiming}
	for _, mph := range speedsMph {
		scen := DefaultSISO(seed)
		link, err := scen.Build()
		if err != nil {
			return nil, err
		}
		// Put the receiver in motion: a slow drift along +x.
		v := rfphys.MphToMps(mph)
		link.RX.Node.Velocity = geom.V(v, 0, 0)
		link.InvalidateEnvironment()

		ms, err := link.Sweep(res.Timing, 0)
		if err != nil {
			return nil, err
		}
		// Winner by min-SNR as seen during the sweep.
		bestIdx, bestScore := 0, ms[0].CSI.MinSNRdB()
		for i, m := range ms[1:] {
			if s := m.CSI.MinSNRdB(); s > bestScore {
				bestIdx, bestScore = i+1, s
			}
		}
		end := ms[len(ms)-1].At + res.Timing.PerMeasurement + res.Timing.SwitchLatency

		// Re-measure the winner at sweep end.
		actual, err := link.MeasureCSI(ms[bestIdx].Config, end.Seconds())
		if err != nil {
			return nil, err
		}
		// Oracle: instantaneous exhaustive sweep frozen at sweep end.
		oracleBest := -1e9
		var sweepErr error
		link.Array.EachConfig(func(_ int, c element.Config) bool {
			csi, err := link.MeasureCSI(c, end.Seconds())
			if err != nil {
				sweepErr = err
				return false
			}
			if s := csi.MinSNRdB(); s > oracleBest {
				oracleBest = s
			}
			return true
		})
		if sweepErr != nil {
			return nil, sweepErr
		}

		lambda := rfphys.Wavelength(link.Grid.CenterHz)
		tc := rfphys.CoherenceTime(rfphys.DopplerShiftHz(v, lambda))
		row := StalenessRow{
			SpeedMph:    mph,
			CoherenceMs: tc * 1e3,
			PredictedDB: bestScore,
			ActualDB:    actual.MinSNRdB(),
			RegretDB:    bestScore - actual.MinSNRdB(),
			OracleDB:    oracleBest,
		}
		if mph == 0 {
			row.CoherenceMs = 0 // static: infinite; print as —
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the table.
func (r *StalenessResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Sweep staleness (§2): winner chosen during a %v sweep vs its actual\n",
		r.Timing.SweepDuration(64))
	fmt.Fprintf(w, "post-sweep performance, receiver in motion\n\n")
	fmt.Fprintf(w, "%-10s  %-13s  %-13s  %-11s  %-10s  %-10s\n",
		"speed mph", "coherence ms", "predicted dB", "actual dB", "regret dB", "oracle dB")
	for _, row := range r.Rows {
		coh := fmt.Sprintf("%.1f", row.CoherenceMs)
		if row.CoherenceMs == 0 {
			coh = "static"
		}
		fmt.Fprintf(w, "%-10.1f  %-13s  %-13.2f  %-11.2f  %-10.2f  %-10.2f\n",
			row.SpeedMph, coh, row.PredictedDB, row.ActualDB, row.RegretDB, row.OracleDB)
	}
	fmt.Fprintf(w, "\nA static room carries no regret; at walking-and-above speeds the slow\n")
	fmt.Fprintf(w, "sweep's winner is stale before it can be applied — the paper's case for\n")
	fmt.Fprintf(w, "packet-timescale control (§2).\n")
}
