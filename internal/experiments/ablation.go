package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"press/internal/control"
	"press/internal/element"
	"press/internal/radio"
)

// baselineAndBest measures the all-terminated baseline (or state-0 when
// no absorber exists) and runs an exhaustive max-min-SNR search.
func baselineAndBest(link *radio.Link) (baseline, best float64, evals int, err error) {
	ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}}
	base, ok := link.Array.AllTerminated()
	if !ok {
		base = make(element.Config, link.Array.N())
	}
	baseline, err = ev.Eval(base)
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := instrument(control.Exhaustive{}).Search(link.Array, ev.Eval, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	return baseline, res.BestScore, res.Evaluations, nil
}

// PhaseAblationRow is one phase-granularity setting's outcome.
type PhaseAblationRow struct {
	// Phases is M, the number of reflective phase levels (plus the off
	// state).
	Phases int
	// Configs is the size of the configuration space.
	Configs int
	// BaselineDB and BestDB are the terminated-baseline and optimized
	// worst-subcarrier SNR.
	BaselineDB, BestDB float64
	// GainDB is the improvement.
	GainDB float64
}

// PhaseAblationResult tests §4.1's conjecture that "around eight phase
// values along with the off state may provide sufficient resolution".
type PhaseAblationResult struct {
	Rows []PhaseAblationRow
}

// RunPhaseAblation sweeps the phase granularity at a fixed placement.
func RunPhaseAblation(seed uint64, phaseCounts []int) (*PhaseAblationResult, error) {
	if len(phaseCounts) == 0 {
		phaseCounts = []int{2, 3, 4, 8, 16}
	}
	res := &PhaseAblationResult{}
	for _, m := range phaseCounts {
		scen := DefaultSISO(seed)
		scen.ElementStates = element.NPhaseStates(m, true)
		link, err := scen.Build()
		if err != nil {
			return nil, err
		}
		base, best, evals, err := baselineAndBest(link)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PhaseAblationRow{
			Phases:     m,
			Configs:    evals,
			BaselineDB: base,
			BestDB:     best,
			GainDB:     best - base,
		})
	}
	return res, nil
}

// Print renders the table.
func (r *PhaseAblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A1 (§4.1): reflection-phase granularity, 3 elements, max-min-SNR objective\n")
	fmt.Fprintf(w, "%-8s  %-9s  %-13s  %-11s  %-9s\n", "phases", "configs", "baseline dB", "best dB", "gain dB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d  %-9d  %-13.2f  %-11.2f  %-9.2f\n",
			row.Phases, row.Configs, row.BaselineDB, row.BestDB, row.GainDB)
	}
}

// ElementAblationRow is one (count, pattern) outcome.
type ElementAblationRow struct {
	Elements           int
	Pattern            string
	BaselineDB, BestDB float64
	GainDB             float64
}

// ElementAblationResult tests §4.1's element count / directionality
// trade: "PRESS could use either few well-placed directional antennas or
// many randomly placed but less directional antennas".
type ElementAblationResult struct {
	Rows []ElementAblationRow
}

// RunElementAblation sweeps array size for both element antennas.
func RunElementAblation(seed uint64, counts []int) (*ElementAblationResult, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 3, 4, 5}
	}
	res := &ElementAblationResult{}
	for _, pattern := range []string{"parabolic", "omni"} {
		for _, n := range counts {
			scen := DefaultSISO(seed)
			scen.NumElements = n
			scen.ElementPattern = pattern
			link, err := scen.Build()
			if err != nil {
				return nil, err
			}
			base, best, _, err := baselineAndBest(link)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ElementAblationRow{
				Elements:   n,
				Pattern:    pattern,
				BaselineDB: base,
				BestDB:     best,
				GainDB:     best - base,
			})
		}
	}
	return res, nil
}

// Print renders the table.
func (r *ElementAblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A2 (§4.1): element count and directionality, max-min-SNR objective\n")
	fmt.Fprintf(w, "%-9s  %-10s  %-13s  %-11s  %-9s\n", "elements", "pattern", "baseline dB", "best dB", "gain dB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9d  %-10s  %-13.2f  %-11.2f  %-9.2f\n",
			row.Elements, row.Pattern, row.BaselineDB, row.BestDB, row.GainDB)
	}
}

// SearchAblationRow is one algorithm's outcome at a fixed budget.
type SearchAblationRow struct {
	Algorithm   string
	Budget      int
	Evaluations int
	BestDB      float64
	// FracOfExhaustive is BestDB − baseline over exhaustiveBest − baseline.
	FracOfExhaustive float64
}

// SearchAblationResult compares the §4.2 search strategies on a space too
// large to enumerate within a coherence budget.
type SearchAblationResult struct {
	Elements      int
	SpaceSize     int
	BaselineDB    float64
	ExhaustiveDB  float64
	ExhaustiveNum int
	Rows          []SearchAblationRow
}

// RunSearchAblation compares searchers on an 8-element SP4T array (4⁸ =
// 65536 configurations) with a measurement budget per algorithm.
func RunSearchAblation(seed uint64, budget int) (*SearchAblationResult, error) {
	if budget < 1 {
		budget = 200
	}
	scen := DefaultSISO(seed)
	scen.NumElements = 8
	link, err := scen.Build()
	if err != nil {
		return nil, err
	}
	res := &SearchAblationResult{Elements: 8, SpaceSize: link.Array.NumConfigs()}

	// Reference: terminated baseline and full exhaustive optimum.
	base, exhaustive, evals, err := baselineAndBest(link)
	if err != nil {
		return nil, err
	}
	res.BaselineDB, res.ExhaustiveDB, res.ExhaustiveNum = base, exhaustive, evals

	searchers := []control.Searcher{
		control.Random{Rng: rand.New(rand.NewPCG(seed, 1)), Samples: budget},
		control.Greedy{Rng: rand.New(rand.NewPCG(seed, 2)), Restarts: 8},
		control.HillClimb{Rng: rand.New(rand.NewPCG(seed, 3)), Restarts: 4, StepsPerRestart: budget},
		control.Anneal{Rng: rand.New(rand.NewPCG(seed, 4)), Steps: budget},
		control.Genetic{Rng: rand.New(rand.NewPCG(seed, 5)), Pop: 16, Generations: budget / 16},
	}
	span := exhaustive - base
	for _, s := range searchers {
		ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}}
		r, err := instrument(s).Search(link.Array, ev.Eval, budget)
		if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name(), err)
		}
		frac := 0.0
		if span > 0 {
			frac = (r.BestScore - base) / span
		}
		res.Rows = append(res.Rows, SearchAblationRow{
			Algorithm:        s.Name(),
			Budget:           budget,
			Evaluations:      r.Evaluations,
			BestDB:           r.BestScore,
			FracOfExhaustive: frac,
		})
	}
	return res, nil
}

// Print renders the comparison.
func (r *SearchAblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A3 (§4.2): search strategies, %d elements, %d configurations\n",
		r.Elements, r.SpaceSize)
	fmt.Fprintf(w, "Terminated baseline %.2f dB; exhaustive optimum %.2f dB in %d measurements\n\n",
		r.BaselineDB, r.ExhaustiveDB, r.ExhaustiveNum)
	fmt.Fprintf(w, "%-12s  %-8s  %-13s  %-9s  %-18s\n", "algorithm", "budget", "evaluations", "best dB", "frac of exhaustive")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s  %-8d  %-13d  %-9.2f  %-18.2f\n",
			row.Algorithm, row.Budget, row.Evaluations, row.BestDB, row.FracOfExhaustive)
	}
}
