package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestControlPlaneComparisonOrdering(t *testing.T) {
	res, err := RunControlPlaneComparison(442)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Budgets shrink as actuation latency grows.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].WalkBudget > res.Rows[i-1].WalkBudget {
			t.Errorf("%s has a larger walking budget than %s",
				res.Rows[i].Medium, res.Rows[i-1].Medium)
		}
	}
	// The wired plane must capture more gain than the prototype: the
	// §4.2 argument in one comparison.
	var wired, proto float64
	for _, row := range res.Rows {
		switch row.Medium {
		case "wired":
			wired = row.GainAtWalkDB
		case "prototype":
			proto = row.GainAtWalkDB
		}
	}
	if wired <= proto {
		t.Errorf("wired gain %.2f not above prototype gain %.2f", wired, proto)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "ultrasound") {
		t.Error("print output incomplete")
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	var rec bytes.Buffer
	if err := RecordSweep(442, 2, &rec); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ReplayAnalysis(bytes.NewReader(rec.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"64 configurations × 2 trials", "max null movement", "≥10 dB"} {
		if !strings.Contains(s, want) {
			t.Errorf("replay output missing %q:\n%s", want, s)
		}
	}
}

func TestRecordSweepValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := RecordSweep(442, 0, &buf); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	if err := ReplayAnalysis(strings.NewReader("not json"), &out); err == nil {
		t.Error("garbage record accepted")
	}
}
