package experiments

import (
	"fmt"
	"io"
	"time"

	"press/internal/control"
	"press/internal/radio"
	"press/internal/rfphys"
)

// CoherenceRow is one speed's entry in the §2 timing analysis.
type CoherenceRow struct {
	SpeedMph    float64
	DopplerHz   float64
	CoherenceMs float64
	// PrototypeBudget is how many configurations the paper's ~78 ms
	// testbed can measure within the coherence time.
	PrototypeBudget int
	// FastBudget is the same for a 1 ms packet-timescale control plane.
	FastBudget int
}

// CoherenceResult is the §2 coherence-time table: the paper's 80 ms
// (0.5 mph) to 6 ms (6 mph) envelope, against the measurement budgets of
// the prototype and of a packet-timescale control plane.
type CoherenceResult struct {
	Rows []CoherenceRow
	// PrototypeSweep is the wall-clock of the 64-configuration sweep on
	// the prototype timing (the paper's ~5 s).
	PrototypeSweep time.Duration
}

// RunCoherence computes the table at the paper's carrier (channel 11).
func RunCoherence() *CoherenceResult {
	fast := radio.Timing{PerMeasurement: time.Millisecond, SwitchLatency: 100 * time.Microsecond}
	res := &CoherenceResult{PrototypeSweep: radio.PrototypeTiming.SweepDuration(64)}
	for _, mph := range []float64{0.5, 1, 2, 4, 6} {
		lambda := rfphys.Wavelength(2.462e9)
		fd := rfphys.DopplerShiftHz(rfphys.MphToMps(mph), lambda)
		tc := rfphys.CoherenceTime(fd)
		res.Rows = append(res.Rows, CoherenceRow{
			SpeedMph:        mph,
			DopplerHz:       fd,
			CoherenceMs:     tc * 1e3,
			PrototypeBudget: control.CoherenceBudgetAtSpeed(mph, 2.462e9, radio.PrototypeTiming),
			FastBudget:      control.CoherenceBudgetAtSpeed(mph, 2.462e9, fast),
		})
	}
	return res
}

// Print renders the table.
func (r *CoherenceResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Coherence-time budget (§2): Tc = 9/(16π·fd) at 2.462 GHz\n")
	fmt.Fprintf(w, "Prototype sweep of 64 configs takes %v (paper: ≈5 s)\n\n", r.PrototypeSweep)
	fmt.Fprintf(w, "%-10s  %-12s  %-14s  %-18s  %-14s\n",
		"speed mph", "Doppler Hz", "coherence ms", "prototype budget", "1 ms budget")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10.1f  %-12.1f  %-14.1f  %-18d  %-14d\n",
			row.SpeedMph, row.DopplerHz, row.CoherenceMs, row.PrototypeBudget, row.FastBudget)
	}
	fmt.Fprintf(w, "\nPaper's envelope: ≈80 ms at 0.5 mph, ≈6 ms at 6 mph; the prototype cannot\n")
	fmt.Fprintf(w, "finish even one measurement per coherence interval at walking speed,\n")
	fmt.Fprintf(w, "which is why §3.2 iterates sweeps and reports statistics instead.\n")
}
