package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run reduced workloads (fewer trials/snapshots)
// where that does not change the asserted shape; the full-size paper
// parameters run in cmd/pressim and the repository benchmarks.

func TestFig4ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig4(DefaultFig4())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 8 {
		t.Fatalf("placements = %d, want 8 (panels a–h)", len(res.Placements))
	}
	// Paper: largest mean-SNR change 18.6 dB; we require the same regime
	// (tens of dB, driven by nulls), not the exact number.
	if res.LargestMeanChangeDB < 10 || res.LargestMeanChangeDB > 45 {
		t.Errorf("largest mean change %.1f dB outside the paper's regime (18.6)", res.LargestMeanChangeDB)
	}
	if res.LargestSingleChangeDB < res.LargestMeanChangeDB {
		t.Error("single-trial extreme cannot be below the mean-curve extreme")
	}
	for _, p := range res.Placements {
		if len(p.SNRA) != 52 || len(p.SNRB) != 52 {
			t.Fatalf("placement %s: curves have %d/%d subcarriers", p.Label, len(p.SNRA), len(p.SNRB))
		}
		if p.ConfigA == p.ConfigB {
			t.Errorf("placement %s selected the same config twice", p.Label)
		}
		// Config names use the paper's notation.
		if !strings.HasPrefix(p.ConfigA, "(") || !strings.HasSuffix(p.ConfigA, ")") {
			t.Errorf("placement %s: config name %q not in paper notation", p.Label, p.ConfigA)
		}
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig5(DefaultFig5())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTrial) != 10 {
		t.Fatalf("trials = %d, want 10", len(res.PerTrial))
	}
	// Paper: most pairs move the null 0–1 subcarriers; a few exceed 3;
	// the largest observed movement is ≈9.
	if res.MaxMovement < 3 || res.MaxMovement > 20 {
		t.Errorf("max movement %d outside the paper's regime (≈9)", res.MaxMovement)
	}
	if res.FracBeyond3 <= 0 || res.FracBeyond3 > 0.35 {
		t.Errorf("frac beyond 3 = %.3f; paper has a small tail", res.FracBeyond3)
	}
	for i, e := range res.PerTrial {
		if e.N() == 0 {
			t.Fatalf("trial %d has no qualifying null pairs", i)
		}
		// CCDF at 0⁻ is 1 and it decays: mass concentrated at small moves.
		if e.CCDF(-0.5) != 1 {
			t.Errorf("trial %d: CCDF does not start at 1", i)
		}
		if e.CCDF(1.5) >= e.CCDF(-0.5) {
			t.Errorf("trial %d: no decay by movement 2", i)
		}
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig6(DefaultFig6())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~38% of configuration changes cause a ≥10 dB change on the
	// worst subcarrier; we require the same order of magnitude.
	if res.FracChangeGE10 < 0.05 || res.FracChangeGE10 > 0.6 {
		t.Errorf("frac ≥10 dB = %.3f, want the paper's regime (≈0.38)", res.FracChangeGE10)
	}
	// Paper: fewer than 9% of configs have a worst subcarrier below 20 dB.
	if res.FracMinBelow20 > 0.09 {
		t.Errorf("frac below 20 dB = %.3f, paper reports <0.09", res.FracMinBelow20)
	}
	if res.DeltaMin.N() == 0 || len(res.PerTrialMin) != 10 {
		t.Fatal("missing distributions")
	}
	// The right-panel distributions hold one sample per configuration.
	for i, e := range res.PerTrialMin {
		if e.N() != 64 {
			t.Errorf("trial %d: %d min-SNR samples, want 64", i, e.N())
		}
	}
}

func TestFig7OppositeSelectivity(t *testing.T) {
	res, err := RunFig7(DefaultFig7())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
	// Both configurations must favour their own half by a clear margin.
	if res.ContrastLowerDB < 3 || res.ContrastUpperDB < 3 {
		t.Errorf("contrasts %.1f/%.1f dB below the 3 dB bar", res.ContrastLowerDB, res.ContrastUpperDB)
	}
	if len(res.SNRLower) != 102 || len(res.SNRUpper) != 102 {
		t.Fatalf("curves have %d/%d subcarriers, want 102", len(res.SNRLower), len(res.SNRUpper))
	}
	if res.ConfigLower == res.ConfigUpper {
		t.Error("the two selectivity exemplars are the same configuration")
	}
}

func TestFig8ConditioningImpact(t *testing.T) {
	res, err := RunFig8(Fig8Options{Seed: 822, Snapshots: 10, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 64 {
		t.Fatalf("configs = %d, want 64", len(res.Configs))
	}
	// Paper: a ≈1.5 dB condition-number change between best and worst
	// configurations; we require a clearly resolvable separation.
	if res.SpreadDB < 0.3 || res.SpreadDB > 5 {
		t.Errorf("spread = %.2f dB outside the paper's regime (≈1.5)", res.SpreadDB)
	}
	if res.Configs[res.BestIdx].MedianDB >= res.Configs[res.WorstIdx].MedianDB {
		t.Error("best median not below worst median")
	}
	// Medians must land on the paper's plotting range (0–15 dB-ish).
	med := res.Configs[res.BestIdx].MedianDB
	if med < 0 || med > 25 {
		t.Errorf("best median %.1f dB implausible for a 2×2 indoor channel", med)
	}
}

func TestLoSMatchesPaper(t *testing.T) {
	res, err := RunLoS(DefaultLoS())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "the effect ... is limited to less than 2 dB".
	if res.PassiveMaxEffectDB >= 2 {
		t.Errorf("passive LoS effect %.2f dB, paper reports <2", res.PassiveMaxEffectDB)
	}
	// And the §2/§3 claim that LoS links need active elements: the active
	// variant must have an order-of-magnitude larger effect.
	if res.ActiveMaxEffectDB < 5*res.PassiveMaxEffectDB {
		t.Errorf("active effect %.2f dB does not dominate passive %.2f dB",
			res.ActiveMaxEffectDB, res.PassiveMaxEffectDB)
	}
}

func TestCoherenceTable(t *testing.T) {
	res := RunCoherence()
	if len(res.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Paper: the 64-config sweep takes about 5 seconds.
	if res.PrototypeSweep.Seconds() < 4 || res.PrototypeSweep.Seconds() > 6 {
		t.Errorf("prototype sweep %v, want ≈5 s", res.PrototypeSweep)
	}
	for i, row := range res.Rows {
		// Coherence time shrinks with speed.
		if i > 0 && row.CoherenceMs >= res.Rows[i-1].CoherenceMs {
			t.Error("coherence time not decreasing with speed")
		}
		if row.FastBudget < row.PrototypeBudget {
			t.Error("faster control plane cannot have a smaller budget")
		}
	}
	// Walking pace: paper's ≈80 ms envelope; prototype can't even do one
	// measurement per coherence interval.
	if w := res.Rows[0]; w.CoherenceMs < 50 || w.CoherenceMs > 150 || w.PrototypeBudget != 1 {
		t.Errorf("walking row %+v inconsistent with the paper's envelope", w)
	}
}

func TestPhaseAblation(t *testing.T) {
	res, err := RunPhaseAblation(442, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GainDB < 0 {
			t.Errorf("M=%d: negative gain %.2f (optimum includes the baseline)", row.Phases, row.GainDB)
		}
	}
	// More phases never hurt (the state sets are supersets up to rounding
	// of the phase grid; allow small measurement slack).
	if res.Rows[2].BestDB < res.Rows[0].BestDB-1 {
		t.Errorf("8 phases (%.2f dB) worse than 2 phases (%.2f dB)",
			res.Rows[2].BestDB, res.Rows[0].BestDB)
	}
}

func TestElementAblation(t *testing.T) {
	res, err := RunElementAblation(442, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 patterns × 2 counts
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GainDB < 0 {
			t.Errorf("%d %s elements: negative gain", row.Elements, row.Pattern)
		}
	}
}

func TestSearchAblation(t *testing.T) {
	res, err := RunSearchAblation(442, 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceSize != 65536 {
		t.Fatalf("space = %d, want 4^8", res.SpaceSize)
	}
	if res.ExhaustiveDB < res.BaselineDB {
		t.Error("exhaustive optimum below baseline")
	}
	var greedyFrac, randomFrac float64
	for _, row := range res.Rows {
		if row.Evaluations > row.Budget {
			t.Errorf("%s overspent budget: %d > %d", row.Algorithm, row.Evaluations, row.Budget)
		}
		if row.BestDB > res.ExhaustiveDB+0.5 {
			t.Errorf("%s beat the exhaustive optimum by more than noise", row.Algorithm)
		}
		switch row.Algorithm {
		case "greedy":
			greedyFrac = row.FracOfExhaustive
		case "random":
			randomFrac = row.FracOfExhaustive
		}
	}
	// The paper's §4.2 point: heuristics must recover most of the optimum
	// at a tiny fraction of the 65536 measurements.
	if greedyFrac < 0.5 {
		t.Errorf("greedy recovered only %.2f of the exhaustive gain", greedyFrac)
	}
	_ = randomFrac // random is the floor; no assertion beyond budget
}
