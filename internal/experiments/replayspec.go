package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"press/internal/obs/flight"
)

// RunSpec captures a pressim invocation precisely enough to re-execute
// it: the experiment list and every knob that feeds a harness RNG or
// iteration count. It round-trips through flight-log manifest params,
// which is how `pressctl replay` reconstructs a recorded run.
type RunSpec struct {
	// Exp is the comma-separated experiment list ("fig4", "fig4,fig8",
	// "all").
	Exp string
	// Seed of 0 means each harness's calibrated default — recorded
	// verbatim so replay makes the same choice.
	Seed       uint64
	Trials     int
	Placements int
	Snapshots  int
	Reps       int
	Budget     int
	// Loops, Speed, and SlowPhase parameterize the deadline-tracing demo
	// (exp=demo). They are recorded in every manifest going forward but
	// tolerated as absent when replaying runs recorded before the demo
	// existed.
	Loops     int
	Speed     float64
	SlowPhase time.Duration
}

// AllExperiments is the expansion of -exp all, in execution order.
var AllExperiments = []string{
	"los", "fig4", "fig5", "fig6", "fig7", "fig8", "coherence",
	"controlplane", "staleness", "scaling", "arrayscale", "faults", "ablation",
}

// Experiments returns the expanded experiment list.
func (s RunSpec) Experiments() []string {
	if s.Exp == "all" {
		return append([]string(nil), AllExperiments...)
	}
	parts := strings.Split(s.Exp, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Params renders the spec as manifest parameters.
func (s RunSpec) Params() []flight.Param {
	itoa := strconv.Itoa
	return []flight.Param{
		{Key: "exp", Value: s.Exp},
		{Key: "trials", Value: itoa(s.Trials)},
		{Key: "placements", Value: itoa(s.Placements)},
		{Key: "snapshots", Value: itoa(s.Snapshots)},
		{Key: "reps", Value: itoa(s.Reps)},
		{Key: "budget", Value: itoa(s.Budget)},
		{Key: "loops", Value: itoa(s.Loops)},
		{Key: "speed", Value: strconv.FormatFloat(s.Speed, 'g', -1, 64)},
		{Key: "slow_phase", Value: s.SlowPhase.String()},
	}
}

// SpecFromManifest rebuilds the spec a recorded pressim run was started
// with.
func SpecFromManifest(m *flight.Manifest) (RunSpec, error) {
	if m.Binary != "pressim" {
		return RunSpec{}, fmt.Errorf("experiments: manifest binary %q is not pressim", m.Binary)
	}
	s := RunSpec{Seed: m.Seed}
	var ok bool
	if s.Exp, ok = m.Param("exp"); !ok {
		return RunSpec{}, fmt.Errorf("experiments: manifest missing exp param")
	}
	geti := func(key string, dst *int) error {
		v, ok := m.Param(key)
		if !ok {
			return fmt.Errorf("experiments: manifest missing %s param", key)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("experiments: bad %s param %q", key, v)
		}
		*dst = n
		return nil
	}
	for key, dst := range map[string]*int{
		"trials": &s.Trials, "placements": &s.Placements,
		"snapshots": &s.Snapshots, "reps": &s.Reps, "budget": &s.Budget,
	} {
		if err := geti(key, dst); err != nil {
			return RunSpec{}, err
		}
	}
	// Demo params are optional: manifests recorded before the demo
	// experiment existed simply lack them.
	if _, ok := m.Param("loops"); ok {
		if err := geti("loops", &s.Loops); err != nil {
			return RunSpec{}, err
		}
	}
	if v, ok := m.Param("speed"); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return RunSpec{}, fmt.Errorf("experiments: bad speed param %q", v)
		}
		s.Speed = f
	}
	if v, ok := m.Param("slow_phase"); ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			return RunSpec{}, fmt.Errorf("experiments: bad slow_phase param %q", v)
		}
		s.SlowPhase = d
	}
	return s, nil
}

// seedOr returns the spec's seed, or def when unset — mirroring
// cmd/pressim's flag handling exactly (replay fidelity depends on it).
func (s RunSpec) seedOr(def uint64) uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return def
}

// Run re-executes every experiment in the spec, discarding printed
// results: the point is the measurement side effects, which the
// ambient telemetry scope (SetScope) captures. The dispatch must stay
// in lockstep with cmd/pressim's runOne.
func (s RunSpec) Run() error {
	for _, name := range s.Experiments() {
		if err := s.runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func (s RunSpec) runOne(name string) error {
	switch name {
	case "los":
		o := DefaultLoS()
		if s.Seed != 0 {
			o.Seed = s.Seed
		}
		_, err := RunLoS(o)
		return err
	case "fig4":
		o := DefaultFig4()
		o.Trials = s.Trials
		o.Placements = s.Placements
		if s.Seed != 0 {
			o.BaseSeed = s.Seed
		}
		_, err := RunFig4(o)
		return err
	case "fig5":
		o := DefaultFig5()
		o.Trials = s.Trials
		if s.Seed != 0 {
			o.Seed = s.Seed
		}
		_, err := RunFig5(o)
		return err
	case "fig6":
		o := DefaultFig6()
		o.Trials = s.Trials
		if s.Seed != 0 {
			o.Seed = s.Seed
		}
		_, err := RunFig6(o)
		return err
	case "fig7":
		o := DefaultFig7()
		if s.Seed != 0 {
			o.Seed = s.Seed
		}
		_, err := RunFig7(o)
		return err
	case "fig8":
		o := DefaultFig8()
		o.Snapshots = s.Snapshots
		o.Repetitions = s.Reps
		if s.Seed != 0 {
			o.Seed = s.Seed
		}
		_, err := RunFig8(o)
		return err
	case "coherence":
		RunCoherence()
		return nil
	case "controlplane":
		_, err := RunControlPlaneComparison(s.seedOr(442))
		return err
	case "staleness":
		_, err := RunStaleness(s.seedOr(442), nil)
		return err
	case "ablation":
		seed := s.seedOr(442)
		if _, err := RunPhaseAblation(seed, nil); err != nil {
			return err
		}
		if _, err := RunElementAblation(seed, nil); err != nil {
			return err
		}
		if _, err := RunSearchAblation(seed, s.Budget); err != nil {
			return err
		}
		_, err := RunContinuousAblation(seed, s.Budget)
		return err
	case "scaling":
		_, err := RunMIMOScaling(s.seedOr(822), nil, s.Snapshots)
		return err
	case "arrayscale":
		_, err := RunArrayScaling(s.seedOr(442), nil, s.Budget*2)
		return err
	case "faults":
		_, err := RunFaultTolerance(s.seedOr(442))
		return err
	case "session":
		// One room of the concurrent experiment: session manifests carry
		// exp=session plus the session's absolute seed and budget, so the
		// ambient (flight-adopting) scope re-records the same streams.
		_, err := RunSession("session", s.seedOr(442), s.Budget, CurrentScope())
		return err
	case "demo":
		// The deadline-tracing demo replays its searched configurations
		// deterministically, but loop *latency* is wall-clock-real: the
		// regenerated KindLoop frames carry this host's timings, which is
		// exactly what `pressctl rundiff` compares across runs.
		o := DefaultDemo()
		o.Seed = s.seedOr(o.Seed)
		if s.Loops > 0 {
			o.Loops = s.Loops
		}
		o.SpeedMph = s.Speed
		o.SlowPhase = s.SlowPhase
		if s.Budget > 0 {
			o.Budget = s.Budget
		}
		_, err := RunDemo(o)
		return err
	default:
		return fmt.Errorf("experiments: unknown or non-replayable experiment %q", name)
	}
}
