package experiments

import (
	"fmt"
	"io"
	"time"

	"press/internal/element"
	"press/internal/radio"
	"press/internal/stats"
)

// Fig8Options parameterizes the §3.2.3 MIMO conditioning experiment.
type Fig8Options struct {
	Seed uint64
	// Snapshots averaged per configuration measurement (paper: 50).
	Snapshots int
	// Repetitions of the whole sweep; the figure's CDFs pool condition
	// numbers "across subcarriers and experimental repetitions".
	Repetitions int
}

// DefaultFig8 matches the paper: 64 configs × mean of 50 measurements,
// pooled over 5 repetitions.
func DefaultFig8() Fig8Options {
	return Fig8Options{Seed: 822, Snapshots: 50, Repetitions: 5}
}

// Fig8Config is one configuration's condition-number distribution.
type Fig8Config struct {
	Config string
	// CDF is over per-subcarrier condition numbers (dB), pooled across
	// repetitions.
	CDF *stats.ECDF
	// MedianDB is the distribution median.
	MedianDB float64
}

// Fig8Result holds all 64 distributions and the best/worst exemplars the
// figure highlights in colour.
type Fig8Result struct {
	Configs []Fig8Config
	// BestIdx and WorstIdx index Configs by lowest/highest median.
	BestIdx, WorstIdx int
	// SpreadDB is the best-to-worst median difference — the paper's
	// "changing the 2×2 MIMO channel condition number by 1.5 dB".
	SpreadDB float64
}

// RunFig8 reproduces Figure 8: the distribution of 2×2 MIMO channel
// condition number across subcarriers for each PRESS configuration, each
// computed from the mean of `Snapshots` successive channel measurements.
func RunFig8(opts Fig8Options) (*Fig8Result, error) {
	if opts.Snapshots < 1 || opts.Repetitions < 1 {
		return nil, fmt.Errorf("experiments: fig8 needs ≥1 snapshot and repetition")
	}
	ml, err := MIMOScenario{Seed: opts.Seed, NumElements: 3, Snapshots: opts.Snapshots}.Build()
	if err != nil {
		return nil, err
	}
	nCfg := ml.Array.NumConfigs()
	samples := make([][]float64, nCfg)
	names := make([]string, nCfg)

	var at time.Duration
	for rep := 0; rep < opts.Repetitions; rep++ {
		var sweepErr error
		ml.Array.EachConfig(func(idx int, c element.Config) bool {
			ch, err := ml.MeasureAveraged(c, opts.Snapshots, radio.PrototypeTiming, at)
			if err != nil {
				sweepErr = err
				return false
			}
			at += time.Duration(opts.Snapshots) * radio.PrototypeTiming.PerMeasurement
			cond := ch.CondProfileDBProf(profC())
			observeCondProfile(cond)
			samples[idx] = append(samples[idx], cond...)
			if rep == 0 {
				names[idx] = ml.Array.String(c)
			}
			return true
		})
		if sweepErr != nil {
			return nil, sweepErr
		}
	}

	res := &Fig8Result{Configs: make([]Fig8Config, nCfg)}
	for i := range samples {
		cdf := stats.NewECDF(samples[i])
		res.Configs[i] = Fig8Config{Config: names[i], CDF: cdf, MedianDB: cdf.Quantile(0.5)}
	}
	res.BestIdx, res.WorstIdx = 0, 0
	for i, c := range res.Configs {
		if c.MedianDB < res.Configs[res.BestIdx].MedianDB {
			res.BestIdx = i
		}
		if c.MedianDB > res.Configs[res.WorstIdx].MedianDB {
			res.WorstIdx = i
		}
	}
	res.SpreadDB = res.Configs[res.WorstIdx].MedianDB - res.Configs[res.BestIdx].MedianDB
	return res, nil
}

// Print renders the best/worst CDFs in full and the per-config medians.
func (r *Fig8Result) Print(w io.Writer) {
	best, worst := r.Configs[r.BestIdx], r.Configs[r.WorstIdx]
	fmt.Fprintf(w, "Figure 8: CDF of 2x2 MIMO condition number across subcarriers per PRESS configuration\n")
	fmt.Fprintf(w, "Best (lowest) median:  %s at %.2f dB\n", best.Config, best.MedianDB)
	fmt.Fprintf(w, "Worst (highest) median: %s at %.2f dB\n", worst.Config, worst.MedianDB)
	fmt.Fprintf(w, "Median spread best→worst = %.2f dB (paper: ≈1.5 dB)\n\n", r.SpreadDB)

	fmt.Fprintf(w, "%-10s  %-10s  %-10s\n", "cond (dB)", "best CDF", "worst CDF")
	for _, x := range []float64{0, 2, 4, 6, 8, 10, 12, 15} {
		fmt.Fprintf(w, "%-10.0f  %-10.4f  %-10.4f\n", x, best.CDF.CDF(x), worst.CDF.CDF(x))
	}
	fmt.Fprintf(w, "\nPer-config medians (dB):\n")
	for i, c := range r.Configs {
		marker := ""
		if i == r.BestIdx {
			marker = "  <-- best"
		}
		if i == r.WorstIdx {
			marker = "  <-- worst"
		}
		fmt.Fprintf(w, "%-18s %.2f%s\n", c.Config, c.MedianDB, marker)
	}
}
