package propagation

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand/v2"

	"press/internal/geom"
	"press/internal/obs"
	"press/internal/obs/prof"
	"press/internal/obs/scope"
	"press/internal/rfphys"
)

// Material describes a wall surface for the ray tracer.
type Material struct {
	// EpsR is the relative permittivity driving the Fresnel reflection
	// coefficient. Drywall ≈ 2.5, brick ≈ 4, concrete ≈ 6.
	EpsR float64
	// ExtraLossDB is additional per-bounce scattering loss in dB
	// (roughness, furniture clutter absorbing specular energy).
	ExtraLossDB float64
}

// Drywall is the default interior-wall material.
var Drywall = Material{EpsR: 2.5, ExtraLossDB: 1}

// Concrete suits floors and ceilings.
var Concrete = Material{EpsR: 6, ExtraLossDB: 2}

// Scatterer is a point scatterer (furniture edge, metal fixture, a
// person) that contributes one extra path TX→scatterer→RX.
type Scatterer struct {
	Pos geom.Vec
	// Gain is the dimensionless complex re-scattering amplitude; its
	// magnitude plays the role of √(σ/4π) relative to the Friis segment
	// product, its phase models the scattering phase.
	Gain complex128
	// Velocity makes the scatterer move (metres/second) — a person
	// walking through the room. Even with static endpoints, a moving
	// scatterer Doppler-shifts its path and decorrelates the channel,
	// which is the §2 scenario: "the environment itself" changes.
	Velocity geom.Vec
}

// Node is a radio endpoint (or one antenna of a MIMO endpoint): a
// position, an antenna pattern, and an optional velocity for Doppler.
type Node struct {
	Pos      geom.Vec
	Pattern  rfphys.Pattern
	Velocity geom.Vec // metres/second; zero for a static endpoint
}

// pattern returns the node's antenna pattern, defaulting to isotropic so
// the zero Node is usable in tests.
func (n Node) pattern() rfphys.Pattern {
	if n.Pattern == nil {
		return rfphys.Isotropic{}
	}
	return n.Pattern
}

// Environment is a room with materials, obstacles, and ambient
// scatterers: everything about the radio environment that PRESS does
// *not* control.
type Environment struct {
	Room       geom.Room
	Walls      map[geom.Wall]Material
	Blockers   []geom.Blocker
	Scatterers []Scatterer
	// MaxOrder is the deepest wall-reflection order traced (0 = direct
	// only, 1 = single bounces, 2 adds double bounces). Deeper orders add
	// little power but quadratic path counts; 2 reproduces indoor
	// frequency selectivity well.
	MaxOrder int
	// Obs, when set, receives the tracer's telemetry (traces run, paths
	// produced). The nil default costs one pointer check per trace.
	Obs *obs.Registry
	// Prof, when set, accounts tracing work (time, images enumerated,
	// paths kept/culled) to the path_trace phase. Nil costs one pointer
	// check per trace.
	Prof *prof.Collector
}

// AttachScope points the environment's telemetry at a session scope.
func (e *Environment) AttachScope(sc *scope.Scope) {
	e.Obs = sc.Registry()
	e.Prof = sc.Prof()
}

// NewEnvironment returns an environment for a room of the given size with
// drywall walls, a concrete floor and ceiling, and second-order tracing.
func NewEnvironment(x, y, z float64) *Environment {
	walls := map[geom.Wall]Material{
		geom.WallXMin: Drywall,
		geom.WallXMax: Drywall,
		geom.WallYMin: Drywall,
		geom.WallYMax: Drywall,
		geom.WallZMin: Concrete,
		geom.WallZMax: Concrete,
	}
	return &Environment{Room: geom.NewRoom(x, y, z), Walls: walls, MaxOrder: 2}
}

// material returns the wall's material, defaulting to Drywall.
func (e *Environment) material(w geom.Wall) Material {
	if m, ok := e.Walls[w]; ok {
		return m
	}
	return Drywall
}

// AddScatterers sprinkles n random scatterers uniformly through the room
// using rng, with re-scattering amplitudes drawn from amp·Rayleigh and
// uniform phases. It reproduces the "different scattering environment"
// the paper gets from moving equipment between placements.
func (e *Environment) AddScatterers(rng *rand.Rand, n int, amp float64) {
	for i := 0; i < n; i++ {
		pos := geom.V(
			rng.Float64()*e.Room.Size.X,
			rng.Float64()*e.Room.Size.Y,
			rng.Float64()*e.Room.Size.Z,
		)
		// Rayleigh magnitude with mean ≈ amp, uniform phase.
		mag := amp * math.Sqrt(-2*math.Log(1-rng.Float64()+1e-12)) / math.Sqrt(math.Pi/2)
		ph := 2 * math.Pi * rng.Float64()
		e.Scatterers = append(e.Scatterers, Scatterer{
			Pos:  pos,
			Gain: cmplx.Rect(mag, ph),
		})
	}
}

// Validate checks that the environment is self-consistent (sane order,
// positive room, scatterers inside the room).
func (e *Environment) Validate() error {
	if e.MaxOrder < 0 || e.MaxOrder > 3 {
		return fmt.Errorf("propagation: MaxOrder %d outside [0,3]", e.MaxOrder)
	}
	for i, s := range e.Scatterers {
		if !e.Room.Contains(s.Pos) {
			return fmt.Errorf("propagation: scatterer %d at %v outside room", i, s.Pos)
		}
	}
	return nil
}
