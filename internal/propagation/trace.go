package propagation

import (
	"math"
	"math/cmplx"

	"press/internal/geom"
	"press/internal/obs/prof"
	"press/internal/rfphys"
)

// TracePaths generates the multipath set between tx and rx at wavelength
// lambdaM using the image method: the direct path (unless fully blocked),
// specular wall reflections up to env.MaxOrder bounces, and one path per
// point scatterer. PRESS element paths are not included here — elements
// are controlled, not ambient; internal/element adds them via
// BistaticPath.
func TracePaths(env *Environment, tx, rx Node, lambdaM float64) []Path {
	sp := env.Prof.Start(prof.PhaseTrace)
	var paths []Path
	attempts := 1 // the direct-path candidate

	if p, ok := directPath(env, tx, rx, lambdaM); ok {
		paths = append(paths, p)
	}
	if env.MaxOrder >= 1 {
		ps, n := wallPaths(env, tx, rx, lambdaM, nil)
		paths = append(paths, ps...)
		attempts += n
	}
	if env.MaxOrder >= 2 {
		for _, w1 := range geom.Walls() {
			ps, n := wallPaths(env, tx, rx, lambdaM, []geom.Wall{w1})
			paths = append(paths, ps...)
			attempts += n
		}
	}
	if env.MaxOrder >= 3 {
		for _, w1 := range geom.Walls() {
			for _, w2 := range geom.Walls() {
				if w2 == w1 {
					continue
				}
				ps, n := wallPaths(env, tx, rx, lambdaM, []geom.Wall{w1, w2})
				paths = append(paths, ps...)
				attempts += n
			}
		}
	}
	attempts += len(env.Scatterers)
	for _, s := range env.Scatterers {
		if p, ok := scatterPath(env, tx, rx, s, lambdaM); ok {
			paths = append(paths, p)
		}
	}
	env.Obs.Counter("propagation_traces_total").Inc()
	env.Obs.Counter("propagation_paths_traced_total").Add(int64(len(paths)))
	env.Prof.Add(prof.PhaseTrace, prof.AuxImages, int64(attempts))
	env.Prof.Add(prof.PhaseTrace, prof.AuxPathsKept, int64(len(paths)))
	env.Prof.Add(prof.PhaseTrace, prof.AuxPathsCulled, int64(attempts-len(paths)))
	sp.End()
	return paths
}

// directPath builds the line-of-sight path, attenuated by any blockers it
// crosses. Paths ending below -180 dB are dropped as numerically
// irrelevant.
func directPath(env *Environment, tx, rx Node, lambdaM float64) (Path, bool) {
	d := rx.Pos.Dist(tx.Pos)
	if d == 0 {
		return Path{}, false
	}
	dir := rx.Pos.Sub(tx.Pos).Unit()
	amp := rfphys.FriisAmplitude(d, lambdaM) *
		tx.pattern().Gain(dir) *
		rx.pattern().Gain(dir.Scale(-1))
	lossDB := geom.SegmentLossDB(env.Blockers, tx.Pos, rx.Pos)
	amp *= rfphys.DBToAmplitude(-lossDB)
	if tooWeak(amp) {
		return Path{}, false
	}
	return Path{
		Gain:      complex(amp, 0),
		Delay:     d / rfphys.SpeedOfLight,
		AoD:       dir,
		AoA:       dir,
		DopplerHz: doppler(tx, rx, dir, dir, lambdaM),
		Kind:      KindDirect,
	}, true
}

// wallPaths builds the specular reflection path that bounces off the wall
// sequence prefix followed by one final wall each (i.e. with prefix nil it
// returns all single-bounce paths; with a one-wall prefix all double
// bounces starting there). Consecutive repeats of the same wall are
// geometrically impossible and skipped. The second return is how many
// image candidates were enumerated, for work accounting.
func wallPaths(env *Environment, tx, rx Node, lambdaM float64, prefix []geom.Wall) ([]Path, int) {
	var out []Path
	attempts := 0
	for _, last := range geom.Walls() {
		if len(prefix) > 0 && prefix[len(prefix)-1] == last {
			continue
		}
		attempts++
		seq := append(append([]geom.Wall(nil), prefix...), last)
		if p, ok := imagePath(env, tx, rx, lambdaM, seq); ok {
			out = append(out, p)
		}
	}
	return out, attempts
}

// imagePath constructs the specular path bouncing off the given wall
// sequence, using nested mirror images and unfolding to recover the
// bounce points. The boolean is false when the specular geometry does not
// exist (a bounce point falls outside its wall) or the path is too weak.
func imagePath(env *Environment, tx, rx Node, lambdaM float64, seq []geom.Wall) (Path, bool) {
	room := env.Room
	// Images of the transmitter: img[k] is tx mirrored across seq[0..k].
	imgs := make([]geom.Vec, len(seq))
	cur := tx.Pos
	for i, w := range seq {
		cur = room.Mirror(cur, w)
		imgs[i] = cur
	}
	totalLen := imgs[len(imgs)-1].Dist(rx.Pos)
	if totalLen == 0 {
		return Path{}, false
	}

	// Unfold bounce points back-to-front: the last bounce is the
	// intersection of (lastImage→rx) with the last wall; earlier bounces
	// intersect (earlierImage→nextBounce).
	bounces := make([]geom.Vec, len(seq))
	target := rx.Pos
	for i := len(seq) - 1; i >= 0; i-- {
		// The image seen from `target` through wall seq[i] is imgs[i].
		b, ok := reflectionOnWall(room, imgs[i], target, seq[i])
		if !ok {
			return Path{}, false
		}
		bounces[i] = b
		target = b
	}

	// Assemble the physical polyline tx → bounces... → rx.
	points := make([]geom.Vec, 0, len(seq)+2)
	points = append(points, tx.Pos)
	points = append(points, bounces...)
	points = append(points, rx.Pos)

	amp := rfphys.FriisAmplitude(totalLen, lambdaM)
	gain := complex(amp, 0)

	// Blocker loss per physical segment.
	var blockDB float64
	for i := 0; i+1 < len(points); i++ {
		blockDB += geom.SegmentLossDB(env.Blockers, points[i], points[i+1])
	}
	gain *= complex(rfphys.DBToAmplitude(-blockDB), 0)

	// Reflection coefficient per bounce, with the angle of incidence
	// measured from the wall normal.
	for i, w := range seq {
		inc := bounces[i].Sub(points[i]).Unit()
		n := room.Normal(w)
		theta := math.Acos(clamp(math.Abs(inc.Dot(n)), 0, 1))
		refl := rfphys.FresnelReflection(env.material(w).EpsR, theta)
		refl *= rfphys.DBToAmplitude(-env.material(w).ExtraLossDB)
		gain *= complex(refl, 0)
	}

	aod := points[1].Sub(points[0]).Unit()
	aoa := points[len(points)-1].Sub(points[len(points)-2]).Unit()
	gain *= complex(tx.pattern().Gain(aod)*rx.pattern().Gain(aoa.Scale(-1)), 0)

	if tooWeak(cmplx.Abs(gain)) {
		return Path{}, false
	}
	return Path{
		Gain:      gain,
		Delay:     totalLen / rfphys.SpeedOfLight,
		AoD:       aod,
		AoA:       aoa,
		DopplerHz: doppler(tx, rx, aod, aoa, lambdaM),
		Kind:      KindWall,
		Hops:      len(seq),
	}, true
}

// reflectionOnWall is geom.Room.ReflectionPoint generalized to an image
// point that may lie outside the room: it intersects the segment
// image→target with the wall plane and validates the bounce rectangle.
func reflectionOnWall(room geom.Room, image, target geom.Vec, w geom.Wall) (geom.Vec, bool) {
	d := target.Sub(image)
	var t float64
	switch w {
	case geom.WallXMin:
		if d.X == 0 {
			return geom.Vec{}, false
		}
		t = -image.X / d.X
	case geom.WallXMax:
		if d.X == 0 {
			return geom.Vec{}, false
		}
		t = (room.Size.X - image.X) / d.X
	case geom.WallYMin:
		if d.Y == 0 {
			return geom.Vec{}, false
		}
		t = -image.Y / d.Y
	case geom.WallYMax:
		if d.Y == 0 {
			return geom.Vec{}, false
		}
		t = (room.Size.Y - image.Y) / d.Y
	case geom.WallZMin:
		if d.Z == 0 {
			return geom.Vec{}, false
		}
		t = -image.Z / d.Z
	default: // WallZMax
		if d.Z == 0 {
			return geom.Vec{}, false
		}
		t = (room.Size.Z - image.Z) / d.Z
	}
	if t <= 0 || t >= 1 {
		return geom.Vec{}, false
	}
	p := image.Add(d.Scale(t))
	const slack = 1e-9
	ok := p.X >= -slack && p.X <= room.Size.X+slack &&
		p.Y >= -slack && p.Y <= room.Size.Y+slack &&
		p.Z >= -slack && p.Z <= room.Size.Z+slack
	return p, ok
}

// scatterPath builds the TX→scatterer→RX path.
func scatterPath(env *Environment, tx, rx Node, s Scatterer, lambdaM float64) (Path, bool) {
	d1 := s.Pos.Dist(tx.Pos)
	d2 := rx.Pos.Dist(s.Pos)
	if d1 == 0 || d2 == 0 {
		return Path{}, false
	}
	aod := s.Pos.Sub(tx.Pos).Unit()
	aoa := rx.Pos.Sub(s.Pos).Unit()

	amp := rfphys.FriisAmplitude(d1, lambdaM) * rfphys.FriisAmplitude(d2, lambdaM)
	amp *= tx.pattern().Gain(aod) * rx.pattern().Gain(aoa.Scale(-1))
	lossDB := geom.SegmentLossDB(env.Blockers, tx.Pos, s.Pos) +
		geom.SegmentLossDB(env.Blockers, s.Pos, rx.Pos)
	gain := complex(amp*rfphys.DBToAmplitude(-lossDB), 0) * s.Gain
	if tooWeak(cmplx.Abs(gain)) {
		return Path{}, false
	}
	// A moving scatterer changes the bistatic path length at rate
	// v·(âod − âoa); the resulting Doppler adds to the endpoint terms.
	scatDoppler := s.Velocity.Dot(aoa.Sub(aod)) / lambdaM
	return Path{
		Gain:      gain,
		Delay:     (d1 + d2) / rfphys.SpeedOfLight,
		AoD:       aod,
		AoA:       aoa,
		DopplerHz: doppler(tx, rx, aod, aoa, lambdaM) + scatDoppler,
		Kind:      KindScatter,
		Hops:      1,
	}, true
}

// BistaticPath builds the controlled path TX→via→RX that a PRESS element
// at `via` contributes: Friis spreading on both segments, the via-point
// antenna pattern applied at incidence and departure, blocker losses, and
// the element's complex reflection gain and extra internal delay
// (switched waveguide stub). The boolean is false when the path is too
// weak to matter (e.g. the element is terminated: reflect == 0).
func BistaticPath(env *Environment, tx, rx Node, via geom.Vec, viaPattern rfphys.Pattern,
	reflect complex128, extraDelayS float64, lambdaM float64) (Path, bool) {

	if reflect == 0 {
		return Path{}, false
	}
	d1 := via.Dist(tx.Pos)
	d2 := rx.Pos.Dist(via)
	if d1 == 0 || d2 == 0 {
		return Path{}, false
	}
	if viaPattern == nil {
		viaPattern = rfphys.Isotropic{}
	}
	aod := via.Sub(tx.Pos).Unit()
	aoa := rx.Pos.Sub(via).Unit()

	amp := rfphys.FriisAmplitude(d1, lambdaM) * rfphys.FriisAmplitude(d2, lambdaM)
	amp *= tx.pattern().Gain(aod) * rx.pattern().Gain(aoa.Scale(-1))
	// The element's antenna gain applies on reception and on re-radiation.
	amp *= viaPattern.Gain(aod.Scale(-1)) * viaPattern.Gain(aoa)
	lossDB := geom.SegmentLossDB(env.Blockers, tx.Pos, via) +
		geom.SegmentLossDB(env.Blockers, via, rx.Pos)

	gain := complex(amp*rfphys.DBToAmplitude(-lossDB), 0) * reflect
	if tooWeak(cmplx.Abs(gain)) {
		return Path{}, false
	}
	env.Obs.Counter("propagation_element_paths_total").Inc()
	return Path{
		Gain:      gain,
		Delay:     (d1+d2)/rfphys.SpeedOfLight + extraDelayS,
		AoD:       aod,
		AoA:       aoa,
		DopplerHz: doppler(tx, rx, aod, aoa, lambdaM),
		Kind:      KindElement,
		Hops:      1,
	}, true
}

// doppler returns the per-path Doppler shift from the endpoint
// velocities: the transmitter moving along the departure direction and
// the receiver moving against the arrival direction both raise the
// observed frequency.
func doppler(tx, rx Node, aod, aoa geom.Vec, lambdaM float64) float64 {
	return (tx.Velocity.Dot(aod) - rx.Velocity.Dot(aoa)) / lambdaM
}

// tooWeak reports whether a path amplitude is below the -180 dB floor
// where it cannot influence any measurable quantity.
func tooWeak(amp float64) bool { return amp < 1e-9 }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
