// Package propagation implements the multipath propagation substrate the
// paper's experiments run over. It follows the standard signal model the
// paper cites (§2, [31, 32]): the channel between a sender and receiver is
// a superposition of paths, each characterized by its angle of departure
// φ, propagation delay τ, Doppler shift γ, angle of arrival θ, and complex
// gain. The package generates those paths for an indoor room with the
// image method (direct path, wall bounces up to second order, point
// scatterers) and evaluates the resulting channel frequency response on
// any subcarrier grid.
//
// PRESS elements add their own switched paths through the same model; see
// BistaticPath and internal/element.
package propagation

import (
	"fmt"
	"math"
	"math/cmplx"

	"press/internal/geom"
	"press/internal/rfphys"
)

// Kind classifies how a path came to be, for diagnostics and for filters
// ("what does the channel look like without the element paths?").
type Kind int

// Path kinds.
const (
	KindDirect Kind = iota
	KindWall
	KindScatter
	KindElement
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDirect:
		return "direct"
	case KindWall:
		return "wall"
	case KindScatter:
		return "scatter"
	case KindElement:
		return "element"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Path is one propagation path in the paper's signal model: a complex
// gain, a delay, angles at both ends, and a Doppler shift.
type Path struct {
	// Gain is the frequency-flat complex amplitude of the path: antenna
	// gains, spreading loss, reflection coefficients, and any fixed phase
	// (e.g. a reflection sign). The frequency-dependent propagation phase
	// e^{-j2πfτ} is NOT included; Response applies it from Delay.
	Gain complex128
	// Delay is the propagation delay τ in seconds (includes any
	// switched-stub delay inside a PRESS element).
	Delay float64
	// AoD and AoA are unit vectors: the departure direction at the
	// transmitter and the direction of travel at the receiver.
	AoD, AoA geom.Vec
	// DopplerHz is the Doppler shift γ of this path.
	DopplerHz float64
	// Kind records the path's origin.
	Kind Kind
	// Hops is the number of reflections (0 for the direct path).
	Hops int
}

// PowerDB returns the path's gain in dB (20·log10|gain|).
func (p Path) PowerDB() float64 { return rfphys.AmplitudeToDB(cmplx.Abs(p.Gain)) }

// ResponseAt evaluates the channel frequency response of the path set at
// absolute frequency fHz and time t seconds:
//
//	H(f, t) = Σ_l gain_l · e^{-j2πfτ_l} · e^{+j2πγ_l t}
func ResponseAt(paths []Path, fHz, t float64) complex128 {
	var h complex128
	for _, p := range paths {
		phase := -2 * math.Pi * fHz * p.Delay
		if p.DopplerHz != 0 {
			phase += 2 * math.Pi * p.DopplerHz * t
		}
		h += p.Gain * cmplx.Exp(complex(0, phase))
	}
	return h
}

// Response evaluates the channel response on a whole frequency grid at
// time t, returning one complex sample per frequency.
func Response(paths []Path, freqsHz []float64, t float64) []complex128 {
	h := make([]complex128, len(freqsHz))
	for i, f := range freqsHz {
		h[i] = ResponseAt(paths, f, t)
	}
	return h
}

// TotalPowerDB returns the incoherent sum of path powers in dB — an upper
// envelope on the channel gain, useful for sanity checks.
func TotalPowerDB(paths []Path) float64 {
	var sum float64
	for _, p := range paths {
		a := cmplx.Abs(p.Gain)
		sum += a * a
	}
	return rfphys.LinearToDB(sum)
}

// MeanDelay returns the power-weighted mean delay of the path set, in
// seconds. An empty or zero-power set yields 0.
func MeanDelay(paths []Path) float64 {
	var pw, sum float64
	for _, p := range paths {
		a := cmplx.Abs(p.Gain)
		pw += a * a
		sum += a * a * p.Delay
	}
	if pw == 0 {
		return 0
	}
	return sum / pw
}

// RMSDelaySpread returns the power-weighted RMS delay spread, the standard
// frequency-selectivity metric: large spread ⇒ closely spaced frequency
// nulls.
func RMSDelaySpread(paths []Path) float64 {
	mean := MeanDelay(paths)
	var pw, sum float64
	for _, p := range paths {
		a := cmplx.Abs(p.Gain)
		d := p.Delay - mean
		pw += a * a
		sum += a * a * d * d
	}
	if pw == 0 {
		return 0
	}
	return math.Sqrt(sum / pw)
}

// CoherenceBandwidth returns the 50%-correlation coherence bandwidth
// estimate 1/(5·τ_rms) in Hz. Zero delay spread yields +Inf.
func CoherenceBandwidth(paths []Path) float64 {
	s := RMSDelaySpread(paths)
	if s == 0 {
		return math.Inf(1)
	}
	return 1 / (5 * s)
}

// MaxDoppler returns the largest |Doppler| across paths, the fd that
// plugs into rfphys.CoherenceTime.
func MaxDoppler(paths []Path) float64 {
	var fd float64
	for _, p := range paths {
		if d := math.Abs(p.DopplerHz); d > fd {
			fd = d
		}
	}
	return fd
}
