package propagation

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"press/internal/geom"
	"press/internal/rfphys"
)

const lambda = 0.1218 // 2.462 GHz, the paper's channel 11

func testEnv() *Environment {
	return NewEnvironment(6, 5, 3)
}

func staticNodes() (Node, Node) {
	tx := Node{Pos: geom.V(1, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	rx := Node{Pos: geom.V(5, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	return tx, rx
}

func findKind(paths []Path, k Kind) []Path {
	var out []Path
	for _, p := range paths {
		if p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

func TestDirectPathGeometry(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	p, ok := directPath(env, tx, rx, lambda)
	if !ok {
		t.Fatal("no direct path in empty room")
	}
	d := tx.Pos.Dist(rx.Pos)
	if math.Abs(p.Delay-d/rfphys.SpeedOfLight) > 1e-18 {
		t.Errorf("delay = %v, want %v", p.Delay, d/rfphys.SpeedOfLight)
	}
	// Amplitude = Friis × both antenna gains (horizontal: 2 dBi each).
	want := rfphys.FriisAmplitude(d, lambda) * rfphys.DBToAmplitude(2) * rfphys.DBToAmplitude(2)
	if math.Abs(cmplx.Abs(p.Gain)-want) > 1e-12 {
		t.Errorf("gain = %v, want %v", cmplx.Abs(p.Gain), want)
	}
	if p.AoD != geom.V(1, 0, 0) || p.AoA != geom.V(1, 0, 0) {
		t.Errorf("angles wrong: AoD %v AoA %v", p.AoD, p.AoA)
	}
}

func TestDirectPathBlocked(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	clear, _ := directPath(env, tx, rx, lambda)
	env.Blockers = append(env.Blockers, geom.NewBlocker(geom.V(2.8, 2, 0), geom.V(3.2, 3, 3), 30))
	blocked, ok := directPath(env, tx, rx, lambda)
	if !ok {
		t.Fatal("blocked path should still exist, just attenuated")
	}
	dropDB := rfphys.AmplitudeToDB(cmplx.Abs(clear.Gain) / cmplx.Abs(blocked.Gain))
	if math.Abs(dropDB-30) > 1e-9 {
		t.Errorf("blocker dropped %v dB, want 30", dropDB)
	}
}

func TestSingleBouncePathLengthMatchesImage(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	for _, w := range geom.Walls() {
		p, ok := imagePath(env, tx, rx, lambda, []geom.Wall{w})
		if !ok {
			t.Errorf("wall %v: missing single-bounce path", w)
			continue
		}
		wantLen := env.Room.Mirror(tx.Pos, w).Dist(rx.Pos)
		gotLen := p.Delay * rfphys.SpeedOfLight
		if math.Abs(gotLen-wantLen) > 1e-9 {
			t.Errorf("wall %v: path length %v, want %v", w, gotLen, wantLen)
		}
		if p.Hops != 1 || p.Kind != KindWall {
			t.Errorf("wall %v: hops/kind wrong: %+v", w, p)
		}
	}
}

func TestReflectionWeakerThanDirect(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	paths := TracePaths(env, tx, rx, lambda)
	direct := findKind(paths, KindDirect)
	if len(direct) != 1 {
		t.Fatalf("want 1 direct path, got %d", len(direct))
	}
	for _, p := range findKind(paths, KindWall) {
		if cmplx.Abs(p.Gain) >= cmplx.Abs(direct[0].Gain) {
			t.Errorf("%d-bounce path stronger than direct: %v >= %v",
				p.Hops, cmplx.Abs(p.Gain), cmplx.Abs(direct[0].Gain))
		}
	}
}

func TestTracePathCounts(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()

	env.MaxOrder = 0
	if got := len(TracePaths(env, tx, rx, lambda)); got != 1 {
		t.Errorf("order 0: %d paths, want 1 (direct)", got)
	}
	env.MaxOrder = 1
	p1 := TracePaths(env, tx, rx, lambda)
	if got := len(findKind(p1, KindWall)); got != 6 {
		t.Errorf("order 1: %d wall paths, want 6", got)
	}
	env.MaxOrder = 2
	p2 := TracePaths(env, tx, rx, lambda)
	// 6 single bounces plus the double bounces whose specular geometry
	// exists (not all 30 wall sequences do — e.g. floor-then-sidewall has
	// no specular solution for endpoints at equal height).
	var singles, doubles int
	for _, p := range findKind(p2, KindWall) {
		switch p.Hops {
		case 1:
			singles++
		case 2:
			doubles++
		}
	}
	if singles != 6 {
		t.Errorf("order 2: %d single bounces, want 6", singles)
	}
	if doubles < 10 {
		t.Errorf("order 2: only %d double bounces", doubles)
	}
	if len(findKind(p2, KindDirect)) != 1 {
		t.Error("order 2 lost the direct path")
	}
}

func TestDoubleBounceWeakerThanSingle(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	env.MaxOrder = 2
	paths := findKind(TracePaths(env, tx, rx, lambda), KindWall)
	var maxSingle, maxDouble float64
	for _, p := range paths {
		a := cmplx.Abs(p.Gain)
		switch p.Hops {
		case 1:
			if a > maxSingle {
				maxSingle = a
			}
		case 2:
			if a > maxDouble {
				maxDouble = a
			}
		}
	}
	if maxDouble >= maxSingle {
		t.Errorf("strongest double bounce (%v) >= strongest single (%v)", maxDouble, maxSingle)
	}
}

func TestScattererPath(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	s := Scatterer{Pos: geom.V(3, 1, 1.5), Gain: 2}
	p, ok := scatterPath(env, tx, rx, s, lambda)
	if !ok {
		t.Fatal("scatterer path missing")
	}
	d1 := tx.Pos.Dist(s.Pos)
	d2 := s.Pos.Dist(rx.Pos)
	if math.Abs(p.Delay-(d1+d2)/rfphys.SpeedOfLight) > 1e-18 {
		t.Errorf("delay = %v", p.Delay)
	}
	// Scatterer farther away yields a weaker path.
	far := Scatterer{Pos: geom.V(3, 0.2, 0.2), Gain: 2}
	pf, _ := scatterPath(env, tx, rx, far, lambda)
	if cmplx.Abs(pf.Gain) >= cmplx.Abs(p.Gain) {
		t.Error("farther scatterer should be weaker")
	}
}

func TestAddScatterersDeterministic(t *testing.T) {
	e1 := testEnv()
	e2 := testEnv()
	e1.AddScatterers(rand.New(rand.NewPCG(1, 2)), 10, 2)
	e2.AddScatterers(rand.New(rand.NewPCG(1, 2)), 10, 2)
	if len(e1.Scatterers) != 10 || len(e2.Scatterers) != 10 {
		t.Fatalf("scatterer counts: %d, %d", len(e1.Scatterers), len(e2.Scatterers))
	}
	for i := range e1.Scatterers {
		if e1.Scatterers[i] != e2.Scatterers[i] {
			t.Fatal("same seed produced different scatterers")
		}
		if !e1.Room.Contains(e1.Scatterers[i].Pos) {
			t.Fatalf("scatterer %d outside room", i)
		}
	}
	if err := e1.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesBadState(t *testing.T) {
	env := testEnv()
	env.MaxOrder = 9
	if env.Validate() == nil {
		t.Error("Validate accepted MaxOrder 9")
	}
	env.MaxOrder = 2
	env.Scatterers = []Scatterer{{Pos: geom.V(-1, 0, 0), Gain: 1}}
	if env.Validate() == nil {
		t.Error("Validate accepted out-of-room scatterer")
	}
}

func TestDopplerStaticIsZero(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	for _, p := range TracePaths(env, tx, rx, lambda) {
		if p.DopplerHz != 0 {
			t.Fatalf("static endpoints produced Doppler %v on %v path", p.DopplerHz, p.Kind)
		}
	}
}

func TestDopplerMovingReceiver(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	// RX moving away from TX along the LoS at 1 m/s: direct-path Doppler
	// is -v/λ.
	rx.Velocity = geom.V(1, 0, 0)
	p, _ := directPath(env, tx, rx, lambda)
	want := -1.0 / lambda
	if math.Abs(p.DopplerHz-want) > 1e-9 {
		t.Errorf("Doppler = %v, want %v", p.DopplerHz, want)
	}
	// Moving toward: positive.
	rx.Velocity = geom.V(-1, 0, 0)
	p, _ = directPath(env, tx, rx, lambda)
	if math.Abs(p.DopplerHz+want) > 1e-9 {
		t.Errorf("Doppler toward = %v, want %v", p.DopplerHz, -want)
	}
}

func TestBistaticPath(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	via := geom.V(3, 1.5, 1.5)

	// Terminated element contributes nothing.
	if _, ok := BistaticPath(env, tx, rx, via, nil, 0, 0, lambda); ok {
		t.Error("terminated element should contribute no path")
	}

	p, ok := BistaticPath(env, tx, rx, via, nil, 1, 0, lambda)
	if !ok {
		t.Fatal("element path missing")
	}
	d := tx.Pos.Dist(via) + via.Dist(rx.Pos)
	if math.Abs(p.Delay-d/rfphys.SpeedOfLight) > 1e-18 {
		t.Errorf("delay = %v", p.Delay)
	}
	if p.Kind != KindElement {
		t.Errorf("kind = %v", p.Kind)
	}

	// A reflection phase rotates the gain without changing its magnitude.
	pRot, _ := BistaticPath(env, tx, rx, via, nil, cmplx.Rect(1, math.Pi/2), 0, lambda)
	if math.Abs(cmplx.Abs(pRot.Gain)-cmplx.Abs(p.Gain)) > 1e-15 {
		t.Error("phase rotation changed magnitude")
	}
	dPhase := cmplx.Phase(pRot.Gain / p.Gain)
	if math.Abs(dPhase-math.Pi/2) > 1e-9 {
		t.Errorf("phase shift = %v, want π/2", dPhase)
	}

	// An extra stub delay of λ/4 shifts the response phase by ≈π/2 at the
	// carrier.
	pStub, _ := BistaticPath(env, tx, rx, via, nil, 1, (lambda/4)/rfphys.SpeedOfLight, lambda)
	f := rfphys.SpeedOfLight / lambda
	h0 := ResponseAt([]Path{p}, f, 0)
	h1 := ResponseAt([]Path{pStub}, f, 0)
	shift := math.Mod(cmplx.Phase(h0/h1)+2*math.Pi, 2*math.Pi)
	if math.Abs(shift-math.Pi/2) > 1e-6 {
		t.Errorf("stub phase shift = %v, want π/2", shift)
	}

	// A directional element pointing away from both endpoints is weaker
	// than an isotropic one.
	away := rfphys.Parabolic{Boresight: geom.V(0, -1, 0), PeakGainDBi: 14, BeamwidthDeg: 21}
	pAway, ok := BistaticPath(env, tx, rx, via, away, 1, 0, lambda)
	if ok && cmplx.Abs(pAway.Gain) >= cmplx.Abs(p.Gain) {
		t.Error("mispointed parabolic should be weaker than isotropic")
	}
}

func TestBistaticBlockerLoss(t *testing.T) {
	env := testEnv()
	tx, rx := staticNodes()
	via := geom.V(3, 1, 1.5)
	clear, _ := BistaticPath(env, tx, rx, via, nil, 1, 0, lambda)
	// Block the TX→element segment only.
	env.Blockers = append(env.Blockers, geom.NewBlocker(geom.V(1.9, 1.4, 0), geom.V(2.1, 2.1, 3), 20))
	blocked, ok := BistaticPath(env, tx, rx, via, nil, 1, 0, lambda)
	if !ok {
		t.Fatal("blocked element path should survive at reduced power")
	}
	drop := rfphys.AmplitudeToDB(cmplx.Abs(clear.Gain) / cmplx.Abs(blocked.Gain))
	if math.Abs(drop-20) > 1e-9 {
		t.Errorf("blocker dropped %v dB, want 20", drop)
	}
}

func TestNLoSChannelIsFrequencySelective(t *testing.T) {
	// The core premise of the paper's §3.2 setup: blocking the direct
	// path yields a channel dominated by multipath, hence strong
	// frequency selectivity across a 20 MHz band.
	env := testEnv()
	// Panel-scale metal reflectors: a flat plate at 2 m behaves like an
	// image source, equivalent to a point-scatterer gain of
	// 4π·d1·d2/(λ(d1+d2)) ≈ 30–100, hence amp 30 here.
	env.AddScatterers(rand.New(rand.NewPCG(42, 7)), 6, 30)
	tx, rx := staticNodes()
	rx.Pos = geom.V(5, 3.1, 1.3) // off-axis so wall-pair delays are distinct
	env.Blockers = append(env.Blockers, geom.NewBlocker(geom.V(2.8, 2, 0), geom.V(3.2, 3, 3), 40))

	paths := TracePaths(env, tx, rx, lambda)
	fc := rfphys.SpeedOfLight / lambda
	var mags []float64
	for i := -26; i <= 26; i++ {
		f := fc + float64(i)*312.5e3
		mags = append(mags, cmplx.Abs(ResponseAt(paths, f, 0)))
	}
	minV, maxV := mags[0], mags[0]
	for _, m := range mags {
		minV = math.Min(minV, m)
		maxV = math.Max(maxV, m)
	}
	swingDB := rfphys.AmplitudeToDB(maxV / minV)
	if swingDB < 3 {
		t.Errorf("NLoS channel swing only %v dB; expected frequency selectivity", swingDB)
	}
}

func BenchmarkTracePathsOrder2(b *testing.B) {
	env := testEnv()
	env.AddScatterers(rand.New(rand.NewPCG(1, 1)), 8, 2)
	tx, rx := staticNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TracePaths(env, tx, rx, lambda)
	}
}

func BenchmarkResponse52Subcarriers(b *testing.B) {
	env := testEnv()
	tx, rx := staticNodes()
	paths := TracePaths(env, tx, rx, lambda)
	freqs := make([]float64, 52)
	fc := rfphys.SpeedOfLight / lambda
	for i := range freqs {
		freqs[i] = fc + float64(i-26)*312.5e3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Response(paths, freqs, 0)
	}
}
