package propagation

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"press/internal/geom"
	"press/internal/rfphys"
)

// TestChannelReciprocity checks the fundamental antenna-theory invariant
// the whole measurement pipeline leans on: swapping transmitter and
// receiver leaves the channel response unchanged (H_ab = H_ba) for any
// static environment. Every path type must satisfy it — direct, wall
// bounces, scatterers.
func TestChannelReciprocity(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for trial := 0; trial < 25; trial++ {
		env := NewEnvironment(8+rng.Float64()*6, 6+rng.Float64()*4, 3)
		env.AddScatterers(rng, 5, 20)
		if trial%2 == 0 {
			env.Blockers = append(env.Blockers, geom.NewBlocker(
				geom.V(3, 2, 0), geom.V(3.5, 3, 2), 20))
		}
		a := Node{
			Pos:     geom.V(1+rng.Float64()*2, 1+rng.Float64()*2, 1+rng.Float64()),
			Pattern: rfphys.Omni{PeakGainDBi: 2},
		}
		b := Node{
			Pos:     geom.V(4+rng.Float64()*2, 3+rng.Float64()*2, 1+rng.Float64()),
			Pattern: rfphys.Omni{PeakGainDBi: 2},
		}
		fwd := TracePaths(env, a, b, lambda)
		rev := TracePaths(env, b, a, lambda)

		for _, f := range []float64{2.452e9, 2.462e9, 2.472e9} {
			hf := ResponseAt(fwd, f, 0)
			hr := ResponseAt(rev, f, 0)
			if cmplx.Abs(hf-hr) > 1e-12*(1+cmplx.Abs(hf)) {
				t.Fatalf("trial %d: reciprocity violated at %v Hz: %v vs %v",
					trial, f, hf, hr)
			}
		}
	}
}

// TestBistaticReciprocity extends reciprocity to element paths: the
// TX→element→RX path equals the RX→element→TX path.
func TestBistaticReciprocity(t *testing.T) {
	env := NewEnvironment(8, 6, 3)
	a := Node{Pos: geom.V(2, 3, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	b := Node{Pos: geom.V(6, 3.5, 1.3), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	via := geom.V(4, 1.5, 1.5)
	pat := rfphys.Parabolic{Boresight: geom.V(0, 1, 0), PeakGainDBi: 14, BeamwidthDeg: 21}

	fwd, ok1 := BistaticPath(env, a, b, via, pat, cmplx.Rect(0.9, 1.1), 2e-10, lambda)
	rev, ok2 := BistaticPath(env, b, a, via, pat, cmplx.Rect(0.9, 1.1), 2e-10, lambda)
	if !ok1 || !ok2 {
		t.Fatal("element path missing")
	}
	if cmplx.Abs(fwd.Gain-rev.Gain) > 1e-15 || math.Abs(fwd.Delay-rev.Delay) > 1e-20 {
		t.Errorf("bistatic reciprocity violated: %v/%v vs %v/%v",
			fwd.Gain, fwd.Delay, rev.Gain, rev.Delay)
	}
}

// TestStaticChannelTimeInvariance: with no moving endpoints the channel
// must be exactly constant in time.
func TestStaticChannelTimeInvariance(t *testing.T) {
	env := NewEnvironment(8, 6, 3)
	env.AddScatterers(rand.New(rand.NewPCG(1, 1)), 6, 20)
	a := Node{Pos: geom.V(2, 3, 1.5)}
	b := Node{Pos: geom.V(6, 3.5, 1.3)}
	paths := TracePaths(env, a, b, lambda)
	h0 := ResponseAt(paths, 2.462e9, 0)
	for _, tt := range []float64{0.001, 1, 60, 3600} {
		if h := ResponseAt(paths, 2.462e9, tt); cmplx.Abs(h-h0) > 1e-15 {
			t.Fatalf("static channel drifted at t=%v", tt)
		}
	}
}

// TestPathGainScalesWithDistance: moving the receiver farther along the
// LoS ray monotonically weakens the direct path.
func TestPathGainScalesWithDistance(t *testing.T) {
	env := NewEnvironment(20, 6, 3)
	env.MaxOrder = 0
	a := Node{Pos: geom.V(1, 3, 1.5)}
	prev := math.Inf(1)
	for d := 2.0; d <= 18; d += 2 {
		b := Node{Pos: geom.V(1+d, 3, 1.5)}
		paths := TracePaths(env, a, b, lambda)
		if len(paths) != 1 {
			t.Fatalf("want only the direct path, got %d", len(paths))
		}
		g := cmplx.Abs(paths[0].Gain)
		if g >= prev {
			t.Fatalf("gain did not decay at distance %v", d)
		}
		prev = g
	}
}

// TestEnergyAccounting: total multipath power cannot exceed what an
// unobstructed free-space link at the shortest path length would
// deliver times a generous reflection bound — a coarse sanity envelope
// against accidental gain creation in the tracer.
func TestEnergyAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 20; trial++ {
		env := NewEnvironment(10, 8, 3)
		env.AddScatterers(rng, 6, 20)
		a := Node{Pos: geom.V(2, 3, 1.5)}
		b := Node{Pos: geom.V(7, 4, 1.3)}
		paths := TracePaths(env, a, b, lambda)
		direct := rfphys.FriisAmplitude(a.Pos.Dist(b.Pos), lambda)
		for _, p := range paths {
			if cmplx.Abs(p.Gain) > direct*1.001 {
				t.Fatalf("trial %d: %v path stronger than free-space direct", trial, p.Kind)
			}
		}
	}
}

// TestDopplerSignConvention: a receiver circling the transmitter at
// constant radius sees zero Doppler on the direct path.
func TestDopplerSignConvention(t *testing.T) {
	env := NewEnvironment(10, 8, 3)
	a := Node{Pos: geom.V(5, 4, 1.5)}
	// RX at +x moving tangentially (+y): velocity ⟂ line of sight.
	b := Node{Pos: geom.V(7, 4, 1.5), Velocity: geom.V(0, 1, 0)}
	p, ok := directPath(env, a, b, lambda)
	if !ok {
		t.Fatal("no direct path")
	}
	if math.Abs(p.DopplerHz) > 1e-12 {
		t.Errorf("tangential motion produced Doppler %v", p.DopplerHz)
	}
	// Moving TX toward a static RX raises frequency like a moving RX
	// toward a static TX (symmetry of the two Doppler terms).
	aTow := Node{Pos: geom.V(5, 4, 1.5), Velocity: geom.V(1, 0, 0)}
	bTow := Node{Pos: geom.V(7, 4, 1.5), Velocity: geom.V(-1, 0, 0)}
	p1, _ := directPath(env, aTow, Node{Pos: b.Pos}, lambda)
	p2, _ := directPath(env, Node{Pos: a.Pos}, bTow, lambda)
	if math.Abs(p1.DopplerHz-p2.DopplerHz) > 1e-12 {
		t.Errorf("TX/RX Doppler asymmetry: %v vs %v", p1.DopplerHz, p2.DopplerHz)
	}
	if p1.DopplerHz <= 0 {
		t.Errorf("approaching endpoints should raise frequency, got %v", p1.DopplerHz)
	}
}

// TestMovingScattererDoppler: a person walking through a static link
// Doppler-shifts only the paths that bounce off them.
func TestMovingScattererDoppler(t *testing.T) {
	env := NewEnvironment(10, 8, 3)
	a := Node{Pos: geom.V(2, 4, 1.5)}
	b := Node{Pos: geom.V(8, 4, 1.5)}

	// Walker directly between the endpoints, moving along the link: the
	// bistatic geometry has aod ≈ aoa ≈ +x, so motion along x cancels
	// (path length is stationary) while motion across it also cancels at
	// the midpoint by symmetry... use an off-axis scatterer instead.
	s := Scatterer{Pos: geom.V(5, 2, 1.5), Gain: 10, Velocity: geom.V(0, 1, 0)}
	env.Scatterers = append(env.Scatterers, s)

	paths := TracePaths(env, a, b, lambda)
	var scatterDoppler float64
	for _, p := range paths {
		switch p.Kind {
		case KindScatter:
			scatterDoppler = p.DopplerHz
		default:
			if p.DopplerHz != 0 {
				t.Fatalf("%v path has Doppler %v with static endpoints", p.Kind, p.DopplerHz)
			}
		}
	}
	// Moving toward the link (+y) shortens both legs: positive Doppler.
	if scatterDoppler <= 0 {
		t.Errorf("approaching walker produced Doppler %v, want > 0", scatterDoppler)
	}
	// Magnitude bounded by 2v/λ (fully radial both legs).
	if scatterDoppler > 2*1.0/lambda {
		t.Errorf("Doppler %v exceeds the 2v/λ bound", scatterDoppler)
	}

	// The channel now decorrelates in time even though endpoints are
	// static.
	h0 := ResponseAt(paths, 2.462e9, 0)
	h1 := ResponseAt(paths, 2.462e9, 0.25)
	if cmplx.Abs(h0-h1) == 0 {
		t.Error("walker did not perturb the channel over time")
	}
}
