package propagation

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestResponseAtSinglePath(t *testing.T) {
	p := Path{Gain: 0.5, Delay: 10e-9}
	f := 2.462e9
	h := ResponseAt([]Path{p}, f, 0)
	if math.Abs(cmplx.Abs(h)-0.5) > 1e-12 {
		t.Errorf("|H| = %v, want 0.5", cmplx.Abs(h))
	}
	// Phase = -2πfτ (mod 2π).
	wantPhase := math.Mod(-2*math.Pi*f*10e-9, 2*math.Pi)
	gotPhase := cmplx.Phase(h)
	diff := math.Mod(gotPhase-wantPhase+3*2*math.Pi, 2*math.Pi)
	if diff > 1e-6 && diff < 2*math.Pi-1e-6 {
		t.Errorf("phase = %v, want %v (mod 2π)", gotPhase, wantPhase)
	}
}

func TestResponseTwoPathCancellation(t *testing.T) {
	// Two equal-gain paths whose delays differ by half a period cancel.
	f := 2.462e9
	dtau := 1 / (2 * f) // half a carrier period
	paths := []Path{
		{Gain: 1, Delay: 10e-9},
		{Gain: 1, Delay: 10e-9 + dtau},
	}
	h := ResponseAt(paths, f, 0)
	if cmplx.Abs(h) > 1e-9 {
		t.Errorf("|H| = %v, want ≈0 (destructive)", cmplx.Abs(h))
	}
	// And reinforce at a frequency where the delay difference is a full
	// period.
	f2 := 1 / dtau
	h2 := ResponseAt(paths, f2, 0)
	if math.Abs(cmplx.Abs(h2)-2) > 1e-9 {
		t.Errorf("|H| = %v, want 2 (constructive)", cmplx.Abs(h2))
	}
}

func TestResponseNullSpacing(t *testing.T) {
	// Two-path channel: frequency nulls every 1/Δτ. Δτ = 50 ns → 20 MHz.
	paths := []Path{
		{Gain: 1, Delay: 0},
		{Gain: 1, Delay: 50e-9},
	}
	fNull := 1 / (2 * 50e-9) // first null at 10 MHz
	if a := cmplx.Abs(ResponseAt(paths, fNull, 0)); a > 1e-9 {
		t.Errorf("first null |H| = %v", a)
	}
	if a := cmplx.Abs(ResponseAt(paths, fNull+20e6, 0)); a > 1e-9 {
		t.Errorf("second null |H| = %v", a)
	}
	if a := cmplx.Abs(ResponseAt(paths, 20e6, 0)); math.Abs(a-2) > 1e-9 {
		t.Errorf("peak |H| = %v, want 2", a)
	}
}

func TestResponseDopplerEvolution(t *testing.T) {
	p := Path{Gain: 1, Delay: 0, DopplerHz: 10}
	h0 := ResponseAt([]Path{p}, 2.4e9, 0)
	// After half a Doppler period the phase flips.
	hHalf := ResponseAt([]Path{p}, 2.4e9, 0.05)
	if cmplx.Abs(h0+hHalf) > 1e-9 {
		t.Errorf("Doppler phase flip violated: %v vs %v", h0, hHalf)
	}
	// After a full period it returns.
	hFull := ResponseAt([]Path{p}, 2.4e9, 0.1)
	if cmplx.Abs(h0-hFull) > 1e-9 {
		t.Errorf("Doppler periodicity violated")
	}
}

func TestResponseGridMatchesPointwise(t *testing.T) {
	paths := []Path{{Gain: 1 + 1i, Delay: 30e-9}, {Gain: 0.3, Delay: 80e-9}}
	freqs := []float64{2.45e9, 2.46e9, 2.47e9}
	grid := Response(paths, freqs, 1.5)
	for i, f := range freqs {
		if cmplx.Abs(grid[i]-ResponseAt(paths, f, 1.5)) > 1e-12 {
			t.Fatalf("grid[%d] disagrees with pointwise evaluation", i)
		}
	}
}

func TestDelaySpreadStats(t *testing.T) {
	// Equal-power two-path channel: mean delay is the midpoint, RMS
	// spread is half the separation.
	paths := []Path{
		{Gain: 1, Delay: 0},
		{Gain: 1, Delay: 100e-9},
	}
	if m := MeanDelay(paths); math.Abs(m-50e-9) > 1e-15 {
		t.Errorf("mean delay = %v", m)
	}
	if s := RMSDelaySpread(paths); math.Abs(s-50e-9) > 1e-15 {
		t.Errorf("rms spread = %v", s)
	}
	// Coherence bandwidth 1/(5τrms) = 4 MHz.
	if b := CoherenceBandwidth(paths); math.Abs(b-4e6) > 1 {
		t.Errorf("coherence bw = %v", b)
	}
	// Single path: zero spread, infinite coherence bandwidth.
	single := []Path{{Gain: 1, Delay: 42e-9}}
	if RMSDelaySpread(single) != 0 || !math.IsInf(CoherenceBandwidth(single), 1) {
		t.Error("single-path spread should be 0 with infinite coherence bw")
	}
	if MeanDelay(nil) != 0 || RMSDelaySpread(nil) != 0 {
		t.Error("empty path set should have zero delay stats")
	}
}

func TestMaxDoppler(t *testing.T) {
	paths := []Path{
		{DopplerHz: 3}, {DopplerHz: -7}, {DopplerHz: 5},
	}
	if fd := MaxDoppler(paths); fd != 7 {
		t.Errorf("MaxDoppler = %v, want 7", fd)
	}
	if MaxDoppler(nil) != 0 {
		t.Error("MaxDoppler(nil) should be 0")
	}
}

func TestKindString(t *testing.T) {
	if KindDirect.String() != "direct" || KindElement.String() != "element" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() != "kind(42)" {
		t.Error("unknown kind name wrong")
	}
}

func TestPowerDB(t *testing.T) {
	p := Path{Gain: complex(0.1, 0)}
	if got := p.PowerDB(); math.Abs(got+20) > 1e-9 {
		t.Errorf("PowerDB = %v, want -20", got)
	}
}
