// Package core ties the PRESS system together: a Space is one
// PRESS-instrumented smart space — a radio environment, the wall-embedded
// element array controlled as a unit, and the wireless links operating
// inside it. The Space owns the currently applied configuration and runs
// the §2 control loop: measure links, search the configuration space
// under a coherence budget, actuate.
//
// The repository-root press package re-exports this as the public API.
package core

import (
	"fmt"
	"sort"
	"time"

	"press/internal/control"
	"press/internal/element"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/radio"
)

// Space is a PRESS-instrumented smart space.
type Space struct {
	Env   *propagation.Environment
	Array *element.Array

	seed    uint64
	nextSub uint64
	links   map[string]*radio.Link
	order   []string

	applied element.Config
}

// NewSpace builds a space over an environment and element array. The seed
// makes all link measurement noise reproducible.
func NewSpace(env *propagation.Environment, arr *element.Array, seed uint64) (*Space, error) {
	if env == nil || arr == nil {
		return nil, fmt.Errorf("core: nil environment or array")
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	applied, ok := arr.AllTerminated()
	if !ok {
		applied = make(element.Config, arr.N())
	}
	return &Space{
		Env: env, Array: arr, seed: seed,
		links:   make(map[string]*radio.Link),
		applied: applied,
	}, nil
}

// AddLink registers a named link through this space's environment and
// array. Link names must be unique.
func (s *Space) AddLink(name string, tx, rx *radio.Radio, grid ofdm.Grid) (*radio.Link, error) {
	if _, dup := s.links[name]; dup {
		return nil, fmt.Errorf("core: duplicate link %q", name)
	}
	s.nextSub++
	link, err := radio.NewLink(s.Env, tx, rx, grid, s.Array, s.seed+s.nextSub*0x9e37)
	if err != nil {
		return nil, err
	}
	s.links[name] = link
	s.order = append(s.order, name)
	return link, nil
}

// Link returns a registered link, or nil.
func (s *Space) Link(name string) *radio.Link { return s.links[name] }

// LinkNames returns the registered link names in insertion order.
func (s *Space) LinkNames() []string { return append([]string(nil), s.order...) }

// Applied returns the currently applied array configuration.
func (s *Space) Applied() element.Config { return s.applied.Clone() }

// Apply validates and applies a configuration to the array.
func (s *Space) Apply(cfg element.Config) error {
	if err := s.Array.Validate(cfg); err != nil {
		return err
	}
	s.applied = cfg.Clone()
	return nil
}

// Measure measures the named link's CSI under the applied configuration
// at time t.
func (s *Space) Measure(name string, t time.Duration) (*ofdm.CSI, error) {
	link, ok := s.links[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown link %q", name)
	}
	return link.MeasureCSI(s.applied, t.Seconds())
}

// Goal binds one link to an objective with a weight, for joint
// optimization across the space's current communication pattern — the §2
// trade-off between per-link agility and joint optimality.
type Goal struct {
	Link      string
	Objective control.Objective
	// Weight defaults to 1.
	Weight float64
}

// OptimizeOptions configures an optimization run.
type OptimizeOptions struct {
	// Searcher defaults to Exhaustive.
	Searcher control.Searcher
	// Budget bounds measurements per link evaluation round (0 =
	// unlimited); use control.CoherenceBudget to derive it from mobility.
	Budget int
	// Timing is the per-measurement cost model.
	Timing radio.Timing
	// Apply applies the best configuration to the space on success
	// (default true when unset via Optimize).
	SkipApply bool
}

// Outcome reports an optimization run.
type Outcome struct {
	Best      element.Config
	BestScore float64
	// PerLink holds each goal's individual score under Best.
	PerLink     map[string]float64
	Evaluations int
}

// Optimize searches the array configuration space for the weighted-sum
// optimum of the goals and (by default) applies the winner. Multiple
// goals on different links realize the paper's joint optimization; a
// single goal is the per-link case.
func (s *Space) Optimize(goals []Goal, opts OptimizeOptions) (*Outcome, error) {
	if len(goals) == 0 {
		return nil, fmt.Errorf("core: no goals")
	}
	type bound struct {
		link   *radio.Link
		obj    control.Objective
		weight float64
		name   string
	}
	bounds := make([]bound, 0, len(goals))
	for _, g := range goals {
		link, ok := s.links[g.Link]
		if !ok {
			return nil, fmt.Errorf("core: unknown link %q", g.Link)
		}
		w := g.Weight
		if w == 0 {
			w = 1
		}
		if g.Objective == nil {
			return nil, fmt.Errorf("core: goal on %q has no objective", g.Link)
		}
		bounds = append(bounds, bound{link: link, obj: g.Objective, weight: w, name: g.Link})
	}

	var now time.Duration
	eval := func(cfg element.Config) (float64, error) {
		var sum float64
		for _, b := range bounds {
			csi, err := b.link.MeasureCSI(cfg, now.Seconds())
			if err != nil {
				return 0, fmt.Errorf("core: link %q: %w", b.name, err)
			}
			sum += b.weight * b.obj.Score(csi)
		}
		now += opts.Timing.PerMeasurement + opts.Timing.SwitchLatency
		return sum, nil
	}

	searcher := opts.Searcher
	if searcher == nil {
		searcher = control.Exhaustive{}
	}
	res, err := searcher.Search(s.Array, eval, opts.Budget)
	if err != nil && res == nil {
		return nil, err
	}

	out := &Outcome{
		Best:        res.Best,
		BestScore:   res.BestScore,
		Evaluations: res.Evaluations,
		PerLink:     make(map[string]float64, len(bounds)),
	}
	for _, b := range bounds {
		csi, merr := b.link.MeasureCSI(res.Best, now.Seconds())
		if merr != nil {
			return nil, merr
		}
		out.PerLink[b.name] = b.obj.Score(csi)
	}
	if !opts.SkipApply {
		if aerr := s.Apply(res.Best); aerr != nil {
			return nil, aerr
		}
	}
	// Surface a budget exhaustion as a non-nil error alongside the
	// outcome so callers can distinguish "optimal" from "best effort".
	return out, err
}

// Summary renders a quick textual status of the space for CLIs.
func (s *Space) Summary() string {
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	return fmt.Sprintf("space: %d elements (%d configs), %d links %v, applied %s",
		s.Array.N(), s.Array.NumConfigs(), len(names), names, s.Array.String(s.applied))
}
