package core

import (
	"testing"

	"press/internal/control"
	"press/internal/geom"
	"press/internal/ofdm"
)

// TestOptimizeInterferenceSuppression exercises the Figure 2 "bystander"
// story: the same transmitter reaches its own client (communication
// channel, weight +1) and a neighbouring network's client (interference
// channel, weight −1). Joint optimization should find a configuration
// whose communication-minus-interference margin beats the terminated
// baseline.
func TestOptimizeInterferenceSuppression(t *testing.T) {
	sp := testSpace(t)
	// AP → its own client.
	addTestLink(t, sp, "comm", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))
	// Same AP position → a bystander in the other network.
	addTestLink(t, sp, "intf", geom.V(4.75, 4.5, 1.5), geom.V(7.0, 6.5, 1.3))

	goals := []Goal{
		{Link: "comm", Objective: control.MaxMeanSNR{}, Weight: 1},
		{Link: "intf", Objective: control.MaxMeanSNR{}, Weight: -1},
	}
	margin := func() float64 {
		c, err := sp.Measure("comm", 0)
		if err != nil {
			t.Fatal(err)
		}
		i, err := sp.Measure("intf", 0)
		if err != nil {
			t.Fatal(err)
		}
		return control.MaxMeanSNR{}.Score(c) - control.MaxMeanSNR{}.Score(i)
	}
	before := margin()

	out, err := sp.Optimize(goals, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := margin()
	if after < before-0.5 {
		t.Errorf("optimization worsened the comm-vs-interference margin: %.2f → %.2f dB", before, after)
	}
	if out.PerLink["comm"] == 0 && out.PerLink["intf"] == 0 {
		t.Error("per-link scores missing")
	}
}

// TestInterferenceSINRPipeline glues the pieces end to end: measure the
// communication and interference CSI under the optimized configuration
// and push them through the SINR model.
func TestInterferenceSINRPipeline(t *testing.T) {
	sp := testSpace(t)
	addTestLink(t, sp, "comm", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))
	// Interferer: a *different* transmitter near the same receiver.
	intfTX := geom.V(4.75, 6.2, 1.5)
	addTestLink(t, sp, "intf-at-rx", intfTX, geom.V(7.25, 4.7, 1.3))

	comm, err := sp.Measure("comm", 0)
	if err != nil {
		t.Fatal(err)
	}
	intf, err := sp.Measure("intf-at-rx", 0)
	if err != nil {
		t.Fatal(err)
	}
	sinr, err := ofdm.SINRdB(comm, []*ofdm.CSI{intf})
	if err != nil {
		t.Fatal(err)
	}
	if len(sinr) != 52 {
		t.Fatalf("sinr has %d entries", len(sinr))
	}
	// SINR can never exceed SNR.
	for k := range sinr {
		if sinr[k] > comm.SNRdB[k]+1e-9 {
			t.Fatalf("subcarrier %d: SINR %v above SNR %v", k, sinr[k], comm.SNRdB[k])
		}
	}
	// And with a real co-channel interferer it must cost something.
	lossy := 0
	for k := range sinr {
		if comm.SNRdB[k]-sinr[k] > 1 {
			lossy++
		}
	}
	if lossy == 0 {
		t.Error("co-channel interferer cost nothing anywhere in the band")
	}
}
