package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"press/internal/control"
	"press/internal/element"
	"press/internal/geom"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/radio"
	"press/internal/rfphys"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	env := propagation.NewEnvironment(12, 9, 3)
	env.AddScatterers(rand.New(rand.NewPCG(1, 2)), 10, 35)
	env.Blockers = append(env.Blockers,
		geom.NewBlocker(geom.V(5.6, 4.2, 0), geom.V(5.9, 5.0, 2.2), 35))
	arr := element.NewArray(
		element.NewParabolicElement(geom.V(6.0, 3.2, 1.5), geom.V(7.25, 4.7, 1.3)),
		element.NewParabolicElement(geom.V(6.5, 3.2, 1.5), geom.V(7.25, 4.7, 1.3)),
		element.NewParabolicElement(geom.V(5.6, 3.4, 1.5), geom.V(7.25, 4.7, 1.3)),
	)
	sp, err := NewSpace(env, arr, 7)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func addTestLink(t *testing.T, sp *Space, name string, txPos, rxPos geom.Vec) {
	t.Helper()
	tx := &radio.Radio{
		Node:       propagation.Node{Pos: txPos, Pattern: rfphys.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &radio.Radio{
		Node:          propagation.Node{Pos: rxPos, Pattern: rfphys.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	if _, err := sp.AddLink(name, tx, rx, ofdm.WiFi20()); err != nil {
		t.Fatal(err)
	}
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil, element.NewArray(), 1); err == nil {
		t.Error("nil environment accepted")
	}
	env := propagation.NewEnvironment(6, 5, 3)
	env.MaxOrder = 99
	if _, err := NewSpace(env, element.NewArray(), 1); err == nil {
		t.Error("invalid environment accepted")
	}
}

func TestSpaceStartsTerminated(t *testing.T) {
	sp := testSpace(t)
	cfg := sp.Applied()
	for i, si := range cfg {
		if sp.Array.Elements[i].States[si].Kind != element.Terminate {
			t.Errorf("element %d initial state %d is not terminated", i, si)
		}
	}
}

func TestAddLinkAndMeasure(t *testing.T) {
	sp := testSpace(t)
	addTestLink(t, sp, "ap-client", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))
	if sp.Link("ap-client") == nil {
		t.Fatal("link not registered")
	}
	if _, err := sp.AddLink("ap-client", nil, nil, ofdm.WiFi20()); err == nil {
		t.Error("duplicate name accepted")
	}
	csi, err := sp.Measure("ap-client", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(csi.SNRdB) != 52 {
		t.Fatalf("CSI has %d subcarriers", len(csi.SNRdB))
	}
	if _, err := sp.Measure("nope", 0); err == nil {
		t.Error("unknown link accepted")
	}
	names := sp.LinkNames()
	if len(names) != 1 || names[0] != "ap-client" {
		t.Errorf("names = %v", names)
	}
}

func TestApplyValidates(t *testing.T) {
	sp := testSpace(t)
	if err := sp.Apply(element.Config{0, 0}); err == nil {
		t.Error("short config accepted")
	}
	want := element.Config{1, 2, 0}
	if err := sp.Apply(want); err != nil {
		t.Fatal(err)
	}
	if !sp.Applied().Equal(want) {
		t.Errorf("applied = %v", sp.Applied())
	}
	// Applied returns a copy, not an alias.
	got := sp.Applied()
	got[0] = 3
	if sp.Applied()[0] == 3 {
		t.Error("Applied aliases internal state")
	}
}

func TestOptimizeSingleLink(t *testing.T) {
	sp := testSpace(t)
	addTestLink(t, sp, "link", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))

	before, err := sp.Measure("link", 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sp.Optimize([]Goal{{Link: "link", Objective: control.MaxMinSNR{}}}, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Evaluations != 64 {
		t.Errorf("evaluations = %d, want 64 (exhaustive default)", out.Evaluations)
	}
	if !sp.Applied().Equal(out.Best) {
		t.Error("winner not applied")
	}
	// Optimized min SNR must be at least the terminated baseline (noise
	// slack of 1 dB).
	if out.PerLink["link"] < before.MinSNRdB()-1 {
		t.Errorf("optimized %v dB below the terminated baseline %v dB",
			out.PerLink["link"], before.MinSNRdB())
	}
}

func TestOptimizeJointGoals(t *testing.T) {
	sp := testSpace(t)
	addTestLink(t, sp, "a", geom.V(4.75, 4.3, 1.5), geom.V(7.25, 4.5, 1.3))
	addTestLink(t, sp, "b", geom.V(4.75, 5.1, 1.5), geom.V(7.25, 5.3, 1.3))

	out, err := sp.Optimize([]Goal{
		{Link: "a", Objective: control.MaxMinSNR{}, Weight: 1},
		{Link: "b", Objective: control.MaxMinSNR{}, Weight: 2},
	}, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerLink) != 2 {
		t.Fatalf("per-link scores = %v", out.PerLink)
	}
	if _, ok := out.PerLink["a"]; !ok {
		t.Error("missing link a score")
	}
}

func TestOptimizeBudget(t *testing.T) {
	sp := testSpace(t)
	addTestLink(t, sp, "link", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))
	out, err := sp.Optimize(
		[]Goal{{Link: "link", Objective: control.MaxMeanSNR{}}},
		OptimizeOptions{Budget: 10},
	)
	if !errors.Is(err, control.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if out == nil || out.Evaluations != 10 {
		t.Fatalf("outcome = %+v", out)
	}
	// Best-effort configuration is still applied.
	if !sp.Applied().Equal(out.Best) {
		t.Error("best-effort winner not applied")
	}
}

func TestOptimizeErrors(t *testing.T) {
	sp := testSpace(t)
	if _, err := sp.Optimize(nil, OptimizeOptions{}); err == nil {
		t.Error("no goals accepted")
	}
	if _, err := sp.Optimize([]Goal{{Link: "ghost", Objective: control.MaxMinSNR{}}}, OptimizeOptions{}); err == nil {
		t.Error("unknown link accepted")
	}
	addTestLink(t, sp, "x", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))
	if _, err := sp.Optimize([]Goal{{Link: "x"}}, OptimizeOptions{}); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestOptimizeSkipApply(t *testing.T) {
	sp := testSpace(t)
	addTestLink(t, sp, "link", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))
	before := sp.Applied()
	if _, err := sp.Optimize(
		[]Goal{{Link: "link", Objective: control.MaxMinSNR{}}},
		OptimizeOptions{SkipApply: true},
	); err != nil {
		t.Fatal(err)
	}
	if !sp.Applied().Equal(before) {
		t.Error("SkipApply still mutated the applied config")
	}
}

func TestSummary(t *testing.T) {
	sp := testSpace(t)
	addTestLink(t, sp, "link", geom.V(4.75, 4.5, 1.5), geom.V(7.25, 4.7, 1.3))
	s := sp.Summary()
	if s == "" || len(s) < 20 {
		t.Errorf("summary = %q", s)
	}
}
