// Package geom provides the 3-D geometry used by the propagation engine:
// vectors, rays and segments, axis-aligned rooms with mirror images for
// the image method, blockers, and angle-of-arrival/departure extraction.
//
// Coordinates are metres in a right-handed frame: x and y span the floor,
// z is height. Azimuth is measured in the x–y plane from +x toward +y;
// elevation is measured from the horizontal plane toward +z.
package geom

import (
	"fmt"
	"math"
)

// Vec is a 3-D point or direction.
type Vec struct {
	X, Y, Z float64
}

// V is shorthand for Vec{x, y, z}.
func V(x, y, z float64) Vec { return Vec{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec) Scale(s float64) Vec { return Vec{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the scalar product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v×w.
func (v Vec) Cross(w Vec) Vec {
	return Vec{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the distance between points v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Unit returns v scaled to unit length. The zero vector is returned
// unchanged (there is no meaningful direction to normalize to, and the
// propagation code treats a zero direction as "no path").
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// String formats v with centimetre precision for logs and errors.
func (v Vec) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", v.X, v.Y, v.Z)
}

// Azimuth returns the angle of v's projection onto the floor plane,
// in radians from +x toward +y, in (−π, π].
func (v Vec) Azimuth() float64 { return math.Atan2(v.Y, v.X) }

// Elevation returns the angle between v and the floor plane, in radians,
// positive toward +z. The zero vector has elevation 0.
func (v Vec) Elevation() float64 {
	h := math.Hypot(v.X, v.Y)
	if h == 0 && v.Z == 0 {
		return 0
	}
	return math.Atan2(v.Z, h)
}

// AngleBetween returns the angle in radians between directions v and w,
// in [0, π]. Either vector being zero yields 0.
func AngleBetween(v, w Vec) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c)
}
