package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func near(a, b float64) bool { return math.Abs(a-b) <= tol }

func TestVecArithmetic(t *testing.T) {
	a, b := V(1, 2, 3), V(4, 5, 6)
	if got := a.Add(b); got != V(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCross(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := y.Cross(x); got != z.Scale(-1) {
		t.Errorf("y×x = %v, want -z", got)
	}
	// Cross product is orthogonal to both operands.
	a, b := V(1, 2, 3), V(-2, 0.5, 4)
	c := a.Cross(b)
	if !near(c.Dot(a), 0) || !near(c.Dot(b), 0) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
}

func TestNormDistUnit(t *testing.T) {
	v := V(3, 4, 0)
	if !near(v.Norm(), 5) {
		t.Errorf("Norm = %v", v.Norm())
	}
	if !near(V(1, 1, 1).Dist(V(1, 1, 2)), 1) {
		t.Error("Dist wrong")
	}
	u := v.Unit()
	if !near(u.Norm(), 1) || !near(u.X, 0.6) || !near(u.Y, 0.8) {
		t.Errorf("Unit = %v", u)
	}
	if z := V(0, 0, 0).Unit(); z != V(0, 0, 0) {
		t.Errorf("Unit of zero = %v", z)
	}
}

func TestAzimuthElevation(t *testing.T) {
	cases := []struct {
		v      Vec
		az, el float64
	}{
		{V(1, 0, 0), 0, 0},
		{V(0, 1, 0), math.Pi / 2, 0},
		{V(-1, 0, 0), math.Pi, 0},
		{V(0, 0, 1), 0, math.Pi / 2},
		{V(1, 0, 1), 0, math.Pi / 4},
		{V(1, 1, 0), math.Pi / 4, 0},
	}
	for _, c := range cases {
		if got := c.v.Azimuth(); !near(got, c.az) {
			t.Errorf("Azimuth(%v) = %v, want %v", c.v, got, c.az)
		}
		if got := c.v.Elevation(); !near(got, c.el) {
			t.Errorf("Elevation(%v) = %v, want %v", c.v, got, c.el)
		}
	}
}

func TestAngleBetween(t *testing.T) {
	if got := AngleBetween(V(1, 0, 0), V(0, 1, 0)); !near(got, math.Pi/2) {
		t.Errorf("right angle = %v", got)
	}
	if got := AngleBetween(V(1, 2, 3), V(2, 4, 6)); !near(got, 0) {
		t.Errorf("parallel = %v", got)
	}
	if got := AngleBetween(V(1, 0, 0), V(-1, 0, 0)); !near(got, math.Pi) {
		t.Errorf("antiparallel = %v", got)
	}
	if got := AngleBetween(V(0, 0, 0), V(1, 0, 0)); got != 0 {
		t.Errorf("zero vector = %v", got)
	}
}

// Property: triangle inequality for Dist.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		c := V(clamp(cx), clamp(cy), clamp(cz))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: rotating a vector to unit length preserves azimuth/elevation.
func TestUnitPreservesDirectionProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		v := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if v.Norm() < 1e-9 {
			continue
		}
		u := v.Unit()
		if math.Abs(u.Azimuth()-v.Azimuth()) > 1e-9 ||
			math.Abs(u.Elevation()-v.Elevation()) > 1e-9 {
			t.Fatalf("Unit changed direction of %v", v)
		}
	}
}
