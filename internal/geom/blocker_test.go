package geom

import (
	"math/rand/v2"
	"testing"
)

func TestBlockerCornersNormalized(t *testing.T) {
	b := NewBlocker(V(2, 3, 1), V(1, 0, 2), 30)
	if b.Min != V(1, 0, 1) || b.Max != V(2, 3, 2) {
		t.Errorf("corners = %v %v", b.Min, b.Max)
	}
}

func TestBlockerIntersects(t *testing.T) {
	b := NewBlocker(V(2, 2, 0), V(3, 3, 3), 30)
	cases := []struct {
		name string
		a, c Vec
		want bool
	}{
		{"through", V(0, 2.5, 1.5), V(6, 2.5, 1.5), true},
		{"misses", V(0, 0.5, 1.5), V(6, 0.5, 1.5), false},
		{"endpoint inside", V(2.5, 2.5, 1), V(6, 5, 2), true},
		{"both inside", V(2.2, 2.2, 1), V(2.8, 2.8, 2), true},
		{"parallel outside", V(0, 4, 1), V(6, 4, 1), false},
		{"diagonal through", V(1, 1, 0.5), V(4, 4, 2.5), true},
		{"stops short", V(0, 2.5, 1.5), V(1.5, 2.5, 1.5), false},
		{"grazes face", V(0, 2, 1.5), V(6, 2, 1.5), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := b.Intersects(c.a, c.c); got != c.want {
				t.Errorf("Intersects(%v,%v) = %v, want %v", c.a, c.c, got, c.want)
			}
		})
	}
}

func TestBlockerIntersectsSymmetric(t *testing.T) {
	b := NewBlocker(V(2, 2, 0), V(3, 3, 3), 30)
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 300; trial++ {
		p := V(rng.Float64()*6, rng.Float64()*5, rng.Float64()*3)
		q := V(rng.Float64()*6, rng.Float64()*5, rng.Float64()*3)
		if b.Intersects(p, q) != b.Intersects(q, p) {
			t.Fatalf("asymmetric intersection for %v-%v", p, q)
		}
	}
}

func TestSegmentLossDB(t *testing.T) {
	blockers := []Blocker{
		NewBlocker(V(2, 2, 0), V(3, 3, 3), 30),
		NewBlocker(V(4, 2, 0), V(5, 3, 3), 12),
	}
	// Passes through both.
	if got := SegmentLossDB(blockers, V(0, 2.5, 1.5), V(6, 2.5, 1.5)); got != 42 {
		t.Errorf("loss = %v, want 42", got)
	}
	// Passes through neither.
	if got := SegmentLossDB(blockers, V(0, 0.5, 1.5), V(6, 0.5, 1.5)); got != 0 {
		t.Errorf("loss = %v, want 0", got)
	}
	// Empty blocker list.
	if got := SegmentLossDB(nil, V(0, 0, 0), V(1, 1, 1)); got != 0 {
		t.Errorf("loss = %v, want 0", got)
	}
}
