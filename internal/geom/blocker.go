package geom

// Blocker is an axis-aligned box obstacle (a metal cabinet, a wall
// partition) that attenuates paths crossing it. The paper's NLoS
// experiments "block the direct path between the transmitter and
// receiver"; a Blocker is how the simulation reproduces that setup.
type Blocker struct {
	// Min and Max are opposite corners, Min component-wise ≤ Max.
	Min, Max Vec
	// AttenuationDB is the one-way power loss, in dB, applied to any
	// path segment that passes through the box.
	AttenuationDB float64
}

// NewBlocker builds a blocker from two opposite corners (in any order)
// and a penetration loss in dB.
func NewBlocker(a, b Vec, attenuationDB float64) Blocker {
	lo := Vec{min(a.X, b.X), min(a.Y, b.Y), min(a.Z, b.Z)}
	hi := Vec{max(a.X, b.X), max(a.Y, b.Y), max(a.Z, b.Z)}
	return Blocker{Min: lo, Max: hi, AttenuationDB: attenuationDB}
}

// Intersects reports whether the segment from a to b passes through the
// blocker box, using the slab method. Touching a face counts as an
// intersection: grazing a metal cabinet still perturbs a radio path.
func (bl Blocker) Intersects(a, b Vec) bool {
	d := b.Sub(a)
	tmin, tmax := 0.0, 1.0

	for axis := 0; axis < 3; axis++ {
		var origin, dir, lo, hi float64
		switch axis {
		case 0:
			origin, dir, lo, hi = a.X, d.X, bl.Min.X, bl.Max.X
		case 1:
			origin, dir, lo, hi = a.Y, d.Y, bl.Min.Y, bl.Max.Y
		default:
			origin, dir, lo, hi = a.Z, d.Z, bl.Min.Z, bl.Max.Z
		}
		if dir == 0 {
			if origin < lo || origin > hi {
				return false
			}
			continue
		}
		t1 := (lo - origin) / dir
		t2 := (hi - origin) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return false
		}
	}
	return true
}

// SegmentLossDB returns the total blocker penetration loss, in dB, of the
// segment from a to b across all blockers in the slice.
func SegmentLossDB(blockers []Blocker, a, b Vec) float64 {
	var loss float64
	for _, bl := range blockers {
		if bl.Intersects(a, b) {
			loss += bl.AttenuationDB
		}
	}
	return loss
}
