package geom

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewRoomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero dimension")
		}
	}()
	NewRoom(0, 5, 3)
}

func TestRoomContains(t *testing.T) {
	r := NewRoom(6, 5, 3)
	cases := []struct {
		p    Vec
		want bool
	}{
		{V(3, 2, 1), true},
		{V(0, 0, 0), true},
		{V(6, 5, 3), true},
		{V(-0.1, 2, 1), false},
		{V(3, 5.1, 1), false},
		{V(3, 2, 3.5), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMirrorInvolution(t *testing.T) {
	r := NewRoom(6, 5, 3)
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 100; trial++ {
		p := V(rng.Float64()*6, rng.Float64()*5, rng.Float64()*3)
		for _, w := range Walls() {
			m := r.Mirror(r.Mirror(p, w), w)
			if p.Dist(m) > 1e-12 {
				t.Fatalf("Mirror not an involution on %v across %v", p, w)
			}
		}
	}
}

func TestMirrorKnownValues(t *testing.T) {
	r := NewRoom(6, 5, 3)
	p := V(1, 2, 1.5)
	cases := []struct {
		w    Wall
		want Vec
	}{
		{WallXMin, V(-1, 2, 1.5)},
		{WallXMax, V(11, 2, 1.5)},
		{WallYMin, V(1, -2, 1.5)},
		{WallYMax, V(1, 8, 1.5)},
		{WallZMin, V(1, 2, -1.5)},
		{WallZMax, V(1, 2, 4.5)},
	}
	for _, c := range cases {
		if got := r.Mirror(p, c.w); got.Dist(c.want) > 1e-12 {
			t.Errorf("Mirror %v = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestReflectionPointSpecular(t *testing.T) {
	r := NewRoom(6, 5, 3)
	a := V(1, 2, 1.5)
	b := V(5, 2, 1.5)
	// Reflection off the y-min wall: bounce point has y = 0 and, by
	// symmetry of equal heights, x midway.
	p, ok := r.ReflectionPoint(a, b, WallYMin)
	if !ok {
		t.Fatal("expected a reflection point")
	}
	if math.Abs(p.Y) > 1e-12 || math.Abs(p.X-3) > 1e-12 {
		t.Errorf("bounce point = %v", p)
	}
	// Specular law: angle of incidence equals angle of reflection, i.e.
	// path length equals |Mirror(a) - b|.
	length := a.Dist(p) + p.Dist(b)
	want := r.Mirror(a, WallYMin).Dist(b)
	if math.Abs(length-want) > 1e-12 {
		t.Errorf("path length %v, image distance %v", length, want)
	}
}

func TestReflectionPointAllWalls(t *testing.T) {
	r := NewRoom(6, 5, 3)
	a, b := V(1, 1, 1), V(5, 4, 2)
	for _, w := range Walls() {
		p, ok := r.ReflectionPoint(a, b, w)
		if !ok {
			t.Errorf("wall %v: no reflection point for interior endpoints", w)
			continue
		}
		// The bounce point lies on the wall plane.
		var onPlane bool
		switch w {
		case WallXMin:
			onPlane = math.Abs(p.X) < 1e-9
		case WallXMax:
			onPlane = math.Abs(p.X-6) < 1e-9
		case WallYMin:
			onPlane = math.Abs(p.Y) < 1e-9
		case WallYMax:
			onPlane = math.Abs(p.Y-5) < 1e-9
		case WallZMin:
			onPlane = math.Abs(p.Z) < 1e-9
		case WallZMax:
			onPlane = math.Abs(p.Z-3) < 1e-9
		}
		if !onPlane {
			t.Errorf("wall %v: bounce point %v not on plane", w, p)
		}
	}
}

func TestReflectionPointDegenerate(t *testing.T) {
	r := NewRoom(6, 5, 3)
	// Both points on the wall plane itself: direction parallel, no bounce.
	if _, ok := r.ReflectionPoint(V(1, 0, 1), V(5, 0, 1), WallYMin); ok {
		t.Error("expected no reflection for in-plane segment")
	}
}

func TestNormalsPointInward(t *testing.T) {
	r := NewRoom(6, 5, 3)
	center := V(3, 2.5, 1.5)
	for _, w := range Walls() {
		// A point just inside the wall plus the normal moves toward center.
		p, _ := r.ReflectionPoint(V(1, 1, 1), V(5, 4, 2), w)
		n := r.Normal(w)
		if n.Norm() != 1 {
			t.Errorf("wall %v: normal not unit", w)
		}
		if center.Sub(p).Dot(n) <= 0 {
			t.Errorf("wall %v: normal does not point inward", w)
		}
	}
}

func TestWallString(t *testing.T) {
	if WallZMin.String() != "floor" || WallZMax.String() != "ceiling" {
		t.Error("wall names wrong")
	}
	if Wall(99).String() != "wall(99)" {
		t.Error("unknown wall name wrong")
	}
}
