package geom

import "fmt"

// Wall identifies one of the six boundary planes of an axis-aligned room.
type Wall int

// The six walls of a Room. Naming follows the coordinate convention:
// WallXMin is the plane x = 0, WallXMax the plane x = Room.Size.X, etc.
// WallZMin is the floor and WallZMax the ceiling.
const (
	WallXMin Wall = iota
	WallXMax
	WallYMin
	WallYMax
	WallZMin
	WallZMax
	numWalls
)

// Walls lists all six walls in a stable order.
func Walls() []Wall {
	return []Wall{WallXMin, WallXMax, WallYMin, WallYMax, WallZMin, WallZMax}
}

// String names the wall for diagnostics.
func (w Wall) String() string {
	switch w {
	case WallXMin:
		return "x-min"
	case WallXMax:
		return "x-max"
	case WallYMin:
		return "y-min"
	case WallYMax:
		return "y-max"
	case WallZMin:
		return "floor"
	case WallZMax:
		return "ceiling"
	default:
		return fmt.Sprintf("wall(%d)", int(w))
	}
}

// Room is an axis-aligned rectangular room with one corner at the origin
// and the opposite corner at Size. This matches the paper's controlled
// indoor setting and is all the image method needs.
type Room struct {
	Size Vec
}

// NewRoom returns a room of the given interior dimensions in metres.
// It panics on non-positive dimensions.
func NewRoom(x, y, z float64) Room {
	if x <= 0 || y <= 0 || z <= 0 {
		panic(fmt.Sprintf("geom: invalid room dimensions %gx%gx%g", x, y, z))
	}
	return Room{Size: Vec{x, y, z}}
}

// Contains reports whether p lies inside the room (boundary inclusive).
func (r Room) Contains(p Vec) bool {
	return p.X >= 0 && p.X <= r.Size.X &&
		p.Y >= 0 && p.Y <= r.Size.Y &&
		p.Z >= 0 && p.Z <= r.Size.Z
}

// Mirror returns the mirror image of point p across the given wall plane.
// Mirror images are the core of the image method: a first-order wall
// reflection from TX to RX has the same length and arrival direction as
// the straight segment from Mirror(TX, wall) to RX.
func (r Room) Mirror(p Vec, w Wall) Vec {
	switch w {
	case WallXMin:
		return Vec{-p.X, p.Y, p.Z}
	case WallXMax:
		return Vec{2*r.Size.X - p.X, p.Y, p.Z}
	case WallYMin:
		return Vec{p.X, -p.Y, p.Z}
	case WallYMax:
		return Vec{p.X, 2*r.Size.Y - p.Y, p.Z}
	case WallZMin:
		return Vec{p.X, p.Y, -p.Z}
	case WallZMax:
		return Vec{p.X, p.Y, 2*r.Size.Z - p.Z}
	default:
		panic(fmt.Sprintf("geom: unknown wall %d", int(w)))
	}
}

// ReflectionPoint returns the point on the given wall where the specular
// path from a to b bounces, assuming both points are inside the room.
// The boolean is false when the specular point falls outside the wall's
// rectangle (no geometric reflection exists for this wall/pair).
func (r Room) ReflectionPoint(a, b Vec, w Wall) (Vec, bool) {
	img := r.Mirror(a, w)
	d := b.Sub(img)

	// Parametrize img + t·d and intersect with the wall plane.
	var t float64
	switch w {
	case WallXMin:
		if d.X == 0 {
			return Vec{}, false
		}
		t = -img.X / d.X
	case WallXMax:
		if d.X == 0 {
			return Vec{}, false
		}
		t = (r.Size.X - img.X) / d.X
	case WallYMin:
		if d.Y == 0 {
			return Vec{}, false
		}
		t = -img.Y / d.Y
	case WallYMax:
		if d.Y == 0 {
			return Vec{}, false
		}
		t = (r.Size.Y - img.Y) / d.Y
	case WallZMin:
		if d.Z == 0 {
			return Vec{}, false
		}
		t = -img.Z / d.Z
	case WallZMax:
		if d.Z == 0 {
			return Vec{}, false
		}
		t = (r.Size.Z - img.Z) / d.Z
	default:
		panic(fmt.Sprintf("geom: unknown wall %d", int(w)))
	}
	if t <= 0 || t >= 1 {
		return Vec{}, false
	}
	p := img.Add(d.Scale(t))
	// The bounce point must lie within the wall rectangle (with a little
	// slack for roundoff on the two in-plane coordinates).
	const slack = 1e-9
	ok := p.X >= -slack && p.X <= r.Size.X+slack &&
		p.Y >= -slack && p.Y <= r.Size.Y+slack &&
		p.Z >= -slack && p.Z <= r.Size.Z+slack
	return p, ok
}

// Normal returns the inward-pointing unit normal of the wall.
func (r Room) Normal(w Wall) Vec {
	switch w {
	case WallXMin:
		return Vec{1, 0, 0}
	case WallXMax:
		return Vec{-1, 0, 0}
	case WallYMin:
		return Vec{0, 1, 0}
	case WallYMax:
		return Vec{0, -1, 0}
	case WallZMin:
		return Vec{0, 0, 1}
	case WallZMax:
		return Vec{0, 0, -1}
	default:
		panic(fmt.Sprintf("geom: unknown wall %d", int(w)))
	}
}
