// Package inverse implements the paper's §2 "inverse problem": given the
// existing wireless channel between sender and receiver, compute the
// parameters of the *controllable* paths — the PRESS elements' complex
// reflection coefficients — such that the superposition of environment
// and element paths approximates a desired channel.
//
// The key observation is that the channel is linear in the element
// reflection coefficients: H(f) = H_env(f) + Σ_i B_i(f)·x_i, where
// B_i(f) is element i's unit-reflection path response and x_i its
// complex reflection coefficient. Choosing x to approach a target
// H*(f) is therefore a complex least-squares problem, followed by a
// projection onto each element's realizable (discrete, passive) states.
package inverse

import (
	"fmt"
	"math"
	"math/cmplx"

	"press/internal/cmat"
	"press/internal/element"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/rfphys"
)

// Problem binds the fixed scene: environment, endpoints, array, grid.
type Problem struct {
	Env   *propagation.Environment
	TX    propagation.Node
	RX    propagation.Node
	Array *element.Array
	Grid  ofdm.Grid
}

// Baseline returns the environment-only channel response (all elements
// terminated) on the problem's grid.
func (p *Problem) Baseline() []complex128 {
	lambda := rfphys.Wavelength(p.Grid.CenterHz)
	paths := propagation.TracePaths(p.Env, p.TX, p.RX, lambda)
	return propagation.Response(paths, p.Grid.Frequencies(), 0)
}

// Basis returns the K×N matrix B with B[k][i] = element i's path response
// on subcarrier k at unit reflection (phase 0, amplitude 1). Elements
// whose geometry contributes no path (blocked below the floor) yield a
// zero column.
func (p *Problem) Basis() *cmat.Matrix {
	lambda := rfphys.Wavelength(p.Grid.CenterHz)
	freqs := p.Grid.Frequencies()
	b := cmat.New(len(freqs), p.Array.N())
	for i, e := range p.Array.Elements {
		path, ok := propagation.BistaticPath(p.Env, p.TX, p.RX, e.Pos, e.Pattern, 1, 0, lambda)
		if !ok {
			continue
		}
		resp := propagation.Response([]propagation.Path{path}, freqs, 0)
		for k := range resp {
			b.Set(k, i, resp[k])
		}
	}
	return b
}

// Solution is the outcome of one inverse solve.
type Solution struct {
	// Continuous holds the unconstrained least-squares reflection
	// coefficients, one per element.
	Continuous cmat.Vector
	// Config is the projection of Continuous onto each element's
	// realizable states.
	Config element.Config
	// BaselineResidual and AchievedResidual are ‖H − H*‖ with all
	// elements terminated and with Config applied, respectively.
	BaselineResidual float64
	AchievedResidual float64
}

// Improved reports whether the projected configuration moved the channel
// strictly closer to the target than doing nothing.
func (s *Solution) Improved() bool { return s.AchievedResidual < s.BaselineResidual }

// Solve computes the reflection coefficients that best approximate the
// target response, then projects them onto the array's discrete states
// and evaluates what the projection actually achieves.
func Solve(p *Problem, target []complex128) (*Solution, error) {
	if len(target) != p.Grid.NumUsed() {
		return nil, fmt.Errorf("inverse: target has %d entries for %d subcarriers", len(target), p.Grid.NumUsed())
	}
	if p.Array.N() == 0 {
		return nil, fmt.Errorf("inverse: empty array")
	}
	baseline := p.Baseline()
	basis := p.Basis()

	// delta = H* − H_env is what the element paths must synthesize.
	delta := make(cmat.Vector, len(target))
	var baseRes float64
	for k := range target {
		delta[k] = target[k] - baseline[k]
		baseRes += real(delta[k])*real(delta[k]) + imag(delta[k])*imag(delta[k])
	}
	baseRes = math.Sqrt(baseRes)

	// Continuous step. Over a 20 MHz band the element responses B_i(f)
	// are nearly frequency-flat, so the basis is close to rank one and
	// plain least squares returns huge, non-physical coefficients. The
	// minimal-norm solution via a truncated pseudo-inverse stays bounded.
	x := cmat.PseudoInverse(basis, 1e-6).MulVec(delta)

	lambda := rfphys.Wavelength(p.Grid.CenterHz)
	cfg := ProjectToConfig(p.Array, x, lambda)
	// Discrete refinement on the forward model (no measurements needed:
	// the model is known, so searching it is free). Small spaces are
	// searched exhaustively; larger ones by coordinate descent from the
	// projected warm start.
	cfg = refineDiscrete(p.Array, basis, delta, cfg, lambda)

	// Evaluate the achieved channel under the projected configuration.
	achieved := p.Apply(cfg)
	var achRes float64
	for k := range target {
		d := achieved[k] - target[k]
		achRes += real(d)*real(d) + imag(d)*imag(d)
	}
	achRes = math.Sqrt(achRes)

	return &Solution{
		Continuous:       x,
		Config:           cfg,
		BaselineResidual: baseRes,
		AchievedResidual: achRes,
	}, nil
}

// Apply returns the full channel response under cfg (environment plus
// element paths), the forward model of the inverse problem.
func (p *Problem) Apply(cfg element.Config) []complex128 {
	lambda := rfphys.Wavelength(p.Grid.CenterHz)
	paths := propagation.TracePaths(p.Env, p.TX, p.RX, lambda)
	paths = append(paths, p.Array.Paths(p.Env, p.TX, p.RX, cfg, lambda)...)
	return propagation.Response(paths, p.Grid.Frequencies(), 0)
}

// statePhasor returns the effective carrier-frequency reflection phasor
// of element e's state si: amplitude·e^{-jφ}, or 0 for terminate.
func statePhasor(e *element.Element, si int, lambdaM float64) complex128 {
	refl, extraDelay := e.Reflection(si, lambdaM)
	return refl * cmplx.Exp(complex(0, -2*math.Pi*rfphys.SpeedOfLight/lambdaM*extraDelay))
}

// modelResidual2 returns ‖basis·x(cfg) − delta‖² under the linear model.
func modelResidual2(arr *element.Array, basis *cmat.Matrix, delta cmat.Vector,
	cfg element.Config, lambdaM float64) float64 {

	var sum float64
	for k := 0; k < basis.Rows; k++ {
		acc := -delta[k]
		for i := range cfg {
			acc += basis.At(k, i) * statePhasor(arr.Elements[i], cfg[i], lambdaM)
		}
		sum += real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	return sum
}

// refineDiscrete improves a projected configuration against the linear
// forward model: exhaustively for configuration spaces up to 4096, by
// coordinate descent otherwise.
func refineDiscrete(arr *element.Array, basis *cmat.Matrix, delta cmat.Vector,
	warm element.Config, lambdaM float64) element.Config {

	best := warm.Clone()
	bestRes := modelResidual2(arr, basis, delta, best, lambdaM)

	if arr.NumConfigs() <= 4096 {
		arr.EachConfig(func(_ int, c element.Config) bool {
			if r := modelResidual2(arr, basis, delta, c, lambdaM); r < bestRes {
				bestRes = r
				best = c.Clone()
			}
			return true
		})
		return best
	}

	// Coordinate descent from the warm start.
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := range best {
			for si := 0; si < arr.Elements[i].NumStates(); si++ {
				if si == best[i] {
					continue
				}
				cand := best.Clone()
				cand[i] = si
				if r := modelResidual2(arr, basis, delta, cand, lambdaM); r < bestRes {
					bestRes, best = r, cand
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return best
}

// ProjectToConfig maps continuous reflection coefficients onto each
// element's nearest realizable state: for every element the state whose
// reflection phasor (amplitude·e^{-jφ}, or 0 for terminate) is closest in
// the complex plane to the desired coefficient.
func ProjectToConfig(arr *element.Array, x cmat.Vector, lambdaM float64) element.Config {
	cfg := make(element.Config, arr.N())
	for i, e := range arr.Elements {
		bestState, bestDist := 0, math.Inf(1)
		for si := 0; si < e.NumStates(); si++ {
			refl, extraDelay := e.Reflection(si, lambdaM)
			// The stub delay realizes the phase at the carrier.
			phasor := refl * cmplx.Exp(complex(0, -2*math.Pi*rfphys.SpeedOfLight/lambdaM*extraDelay))
			if d := cmplx.Abs(phasor - x[i]); d < bestDist {
				bestState, bestDist = si, d
			}
		}
		cfg[i] = bestState
	}
	return cfg
}

// TargetFlat builds a flat-magnitude target response at the given channel
// amplitude, preserving the baseline's phase (phase is free for the OFDM
// receiver; only |H| drives SNR). It is the natural "remove the null"
// target of the paper's link-enhancement application.
func TargetFlat(baseline []complex128, amplitude float64) []complex128 {
	out := make([]complex128, len(baseline))
	for k, h := range baseline {
		if h == 0 {
			out[k] = complex(amplitude, 0)
			continue
		}
		out[k] = h / complex(cmplx.Abs(h), 0) * complex(amplitude, 0)
	}
	return out
}

// TargetNotch builds a target equal to the baseline except attenuated by
// attenDB inside [lo, hi) — the spectrum-partitioning shape of Figure 2:
// keep your half of the band, suppress the other.
func TargetNotch(baseline []complex128, lo, hi int, attenDB float64) []complex128 {
	out := append([]complex128(nil), baseline...)
	g := complex(rfphys.DBToAmplitude(-attenDB), 0)
	for k := lo; k < hi && k < len(out); k++ {
		if k < 0 {
			continue
		}
		out[k] *= g
	}
	return out
}
