package inverse

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"press/internal/cmat"
	"press/internal/element"
	"press/internal/geom"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/rfphys"
)

func testProblem(seed uint64) *Problem {
	env := propagation.NewEnvironment(6, 5, 3)
	env.AddScatterers(rand.New(rand.NewPCG(seed, 99)), 6, 30)
	env.Blockers = append(env.Blockers,
		geom.NewBlocker(geom.V(2.6, 2.2, 0), geom.V(2.9, 3.0, 2.2), 35))
	tx := propagation.Node{Pos: geom.V(1.5, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	rx := propagation.Node{Pos: geom.V(4, 2.7, 1.3), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	arr := element.NewArray(
		element.NewParabolicElement(geom.V(2.5, 1.5, 1.5), rx.Pos),
		element.NewParabolicElement(geom.V(3.0, 1.25, 1.5), rx.Pos),
		element.NewParabolicElement(geom.V(3.5, 1.5, 1.5), rx.Pos),
	)
	return &Problem{Env: env, TX: tx, RX: rx, Array: arr, Grid: ofdm.WiFi20()}
}

func TestBasisShape(t *testing.T) {
	p := testProblem(1)
	b := p.Basis()
	if b.Rows != 52 || b.Cols != 3 {
		t.Fatalf("basis shape %dx%d", b.Rows, b.Cols)
	}
	// Every element contributes a nonzero column here.
	for j := 0; j < 3; j++ {
		if b.Col(j).Norm() == 0 {
			t.Errorf("element %d contributes nothing", j)
		}
	}
}

func TestForwardModelLinearity(t *testing.T) {
	// Apply(cfg) must equal baseline + basis·x(cfg) to within the tiny
	// dispersion of the stub delay across the band.
	p := testProblem(2)
	lambda := rfphys.Wavelength(p.Grid.CenterHz)
	baseline := p.Baseline()
	basis := p.Basis()

	cfg := element.Config{0, 2, 3} // phases 0, π, terminated
	x := make(cmat.Vector, 3)
	for i, e := range p.Array.Elements {
		refl, extra := e.Reflection(cfg[i], lambda)
		x[i] = refl * cmplx.Exp(complex(0, -2*math.Pi*rfphys.SpeedOfLight/lambda*extra))
	}
	predicted := basis.MulVec(x)
	actual := p.Apply(cfg)
	for k := range actual {
		want := baseline[k] + predicted[k]
		if cmplx.Abs(actual[k]-want) > 2e-2*cmplx.Abs(actual[k])+1e-12 {
			t.Fatalf("subcarrier %d: forward model mismatch %v vs %v", k, actual[k], want)
		}
	}
}

func TestSolveSelfConsistency(t *testing.T) {
	// Target = the channel some known configuration produces. The solver
	// must find a configuration at least as close to it as the baseline —
	// and since the target is exactly realizable, it should essentially
	// recover it.
	p := testProblem(3)
	want := element.Config{1, 2, 0}
	target := p.Apply(want)

	sol, err := Solve(p, target)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Improved() {
		t.Errorf("solver did not improve on baseline: %v vs %v", sol.AchievedResidual, sol.BaselineResidual)
	}
	if sol.AchievedResidual > 1e-2*sol.BaselineResidual {
		t.Errorf("realizable target not recovered: achieved %v, baseline %v",
			sol.AchievedResidual, sol.BaselineResidual)
	}
}

func TestSolveFlatTarget(t *testing.T) {
	// Ask for a flattened channel at the baseline's median magnitude. The
	// discrete projection cannot reach it exactly, but must not do worse
	// than leaving the array terminated.
	p := testProblem(4)
	baseline := p.Baseline()
	mags := make([]float64, len(baseline))
	for k, h := range baseline {
		mags[k] = cmplx.Abs(h)
	}
	// Median magnitude.
	med := append([]float64(nil), mags...)
	for i := 1; i < len(med); i++ {
		for j := i; j > 0 && med[j] < med[j-1]; j-- {
			med[j], med[j-1] = med[j-1], med[j]
		}
	}
	target := TargetFlat(baseline, med[len(med)/2])

	sol, err := Solve(p, target)
	if err != nil {
		t.Fatal(err)
	}
	if sol.AchievedResidual > sol.BaselineResidual*1.0001 {
		t.Errorf("solution worse than baseline: %v > %v", sol.AchievedResidual, sol.BaselineResidual)
	}
}

func TestProjectToConfig(t *testing.T) {
	arr := element.NewArray(
		&element.Element{Pos: geom.V(1, 1, 1), States: element.SP4TStates()},
	)
	lambda := 0.1218
	amp := rfphys.DBToAmplitude(0) // LossDB 0 in this bare element

	// Coefficient near amplitude·e^{-jπ/2} should pick state 1 (π/2 stub).
	x := cmat.Vector{complex(amp, 0) * cmplx.Exp(complex(0, -math.Pi/2))}
	cfg := ProjectToConfig(arr, x, lambda)
	if cfg[0] != 1 {
		t.Errorf("projected to state %d, want 1 (π/2)", cfg[0])
	}
	// Near-zero coefficient should pick the terminated state.
	cfg = ProjectToConfig(arr, cmat.Vector{0.01}, lambda)
	if arr.Elements[0].States[cfg[0]].Kind != element.Terminate {
		t.Errorf("near-zero coefficient projected to state %d, want terminate", cfg[0])
	}
	// Phase 0 coefficient keeps state 0.
	cfg = ProjectToConfig(arr, cmat.Vector{complex(amp, 0)}, lambda)
	if cfg[0] != 0 {
		t.Errorf("unit coefficient projected to state %d, want 0", cfg[0])
	}
}

func TestSolveValidation(t *testing.T) {
	p := testProblem(5)
	if _, err := Solve(p, make([]complex128, 7)); err == nil {
		t.Error("wrong-length target accepted")
	}
	empty := &Problem{Env: p.Env, TX: p.TX, RX: p.RX, Array: element.NewArray(), Grid: p.Grid}
	if _, err := Solve(empty, make([]complex128, 52)); err == nil {
		t.Error("empty array accepted")
	}
}

func TestTargetNotch(t *testing.T) {
	base := []complex128{1, 1, 1, 1}
	got := TargetNotch(base, 1, 3, 20)
	if got[0] != 1 || got[3] != 1 {
		t.Error("notch touched out-of-range subcarriers")
	}
	want := rfphys.DBToAmplitude(-20)
	if math.Abs(cmplx.Abs(got[1])-want) > 1e-12 || math.Abs(cmplx.Abs(got[2])-want) > 1e-12 {
		t.Errorf("notch depth wrong: %v", got)
	}
	// Out-of-range bounds are clamped safely.
	if out := TargetNotch(base, -5, 99, 10); len(out) != 4 {
		t.Error("bounds not clamped")
	}
}

func TestTargetFlat(t *testing.T) {
	base := []complex128{2i, -3, 0}
	got := TargetFlat(base, 5)
	for k, h := range got {
		if math.Abs(cmplx.Abs(h)-5) > 1e-12 {
			t.Errorf("entry %d magnitude %v, want 5", k, cmplx.Abs(h))
		}
	}
	// Phase preserved where defined.
	if cmplx.Abs(got[0]-5i) > 1e-12 {
		t.Errorf("phase not preserved: %v", got[0])
	}
}
