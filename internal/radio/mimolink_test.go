package radio

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"press/internal/element"
	"press/internal/geom"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/rfphys"
	"press/internal/stats"
)

// mimoTestbed reproduces §3.2.3: 2×2 NLoS transceiver pair, PRESS
// elements co-linear with the TX pair at λ spacing.
func mimoTestbed(t *testing.T, seed uint64) *MIMOLink {
	t.Helper()
	// A larger room than the SISO bench: the 2×2 condition number only
	// varies across the band when the delay spread is big enough that the
	// coherence bandwidth falls below the 16.5 MHz occupied band, which
	// needs bounce paths tens of metres long.
	env := propagation.NewEnvironment(14, 10, 3)
	env.AddScatterers(rand.New(rand.NewPCG(seed, 99)), 10, 40)
	env.Blockers = append(env.Blockers,
		geom.NewBlocker(geom.V(6.6, 4.7, 0), geom.V(6.9, 5.5, 2.2), 35))

	lambda := rfphys.Wavelength(2.462e9)
	omni := rfphys.Omni{PeakGainDBi: 2}
	txAnts := []propagation.Node{
		{Pos: geom.V(5.5, 5.0, 1.5), Pattern: omni},
		{Pos: geom.V(5.5, 5.0+lambda/2, 1.5), Pattern: omni},
	}
	rxAnts := []propagation.Node{
		{Pos: geom.V(8, 5.2, 1.3), Pattern: omni},
		{Pos: geom.V(8, 5.2+lambda/2, 1.3), Pattern: omni},
	}
	// Elements co-linear with the TX antenna pair, λ apart.
	arr := element.NewArray(
		element.NewOmniElement(geom.V(5.5, 5.0+2*lambda, 1.5)),
		element.NewOmniElement(geom.V(5.5, 5.0+3*lambda, 1.5)),
		element.NewOmniElement(geom.V(5.5, 5.0+4*lambda, 1.5)),
	)
	ml, err := NewMIMOLink(env, txAnts, rxAnts, ofdm.WiFi20(), arr, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ml
}

func TestTrueChannelShape(t *testing.T) {
	ml := mimoTestbed(t, 1)
	ch, err := ml.TrueChannel(element.Config{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumSubcarriers() != 52 {
		t.Fatalf("subcarriers = %d", ch.NumSubcarriers())
	}
	m := ch.Matrices[0]
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("matrix shape %dx%d", m.Rows, m.Cols)
	}
	// Antennas at distinct positions: entries must differ.
	if m.At(0, 0) == m.At(1, 1) || m.At(0, 1) == m.At(1, 0) {
		t.Error("channel matrix entries suspiciously identical")
	}
}

func TestConfigMovesConditionNumber(t *testing.T) {
	ml := mimoTestbed(t, 2)
	c0, err := ml.TrueChannel(element.Config{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ml.TrueChannel(element.Config{2, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	m0 := stats.Median(c0.CondProfileDB())
	m1 := stats.Median(c1.CondProfileDB())
	if m0 == m1 {
		t.Error("PRESS configuration had no effect on conditioning")
	}
}

func TestMeasureChannelNoisePerturbs(t *testing.T) {
	ml := mimoTestbed(t, 3)
	truth, err := ml.TrueChannel(element.Config{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := ml.MeasureChannel(element.Config{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Matrices[0].MaxAbsDiff(truth.Matrices[0]) == 0 {
		t.Error("measurement added no noise")
	}
	// But the perturbation is small relative to the channel (the paper's
	// 30+ dB measurement SNR regime).
	rel := noisy.Matrices[0].MaxAbsDiff(truth.Matrices[0]) / truth.Matrices[0].FrobeniusNorm()
	if rel > 0.5 {
		t.Errorf("relative measurement error %v too large", rel)
	}
}

func TestMeasureAveragedConvergesToTruth(t *testing.T) {
	ml := mimoTestbed(t, 4)
	cfg := element.Config{1, 1, 1}
	truth, err := ml.TrueChannel(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := ml.MeasureChannel(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := ml.MeasureAveraged(cfg, 50, Timing{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	errOne := one.Matrices[10].MaxAbsDiff(truth.Matrices[10])
	errAvg := avg.Matrices[10].MaxAbsDiff(truth.Matrices[10])
	if errAvg >= errOne {
		t.Errorf("averaging 50 snapshots did not help: %v vs %v", errAvg, errOne)
	}
}

func TestMeasureAveragedValidation(t *testing.T) {
	ml := mimoTestbed(t, 5)
	if _, err := ml.MeasureAveraged(element.Config{0, 0, 0}, 0, Timing{}, 0); err == nil {
		t.Error("zero snapshots accepted")
	}
}

func TestCondProfileVariesAcrossSubcarriers(t *testing.T) {
	ml := mimoTestbed(t, 6)
	ch, err := ml.TrueChannel(element.Config{0, 2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof := ch.CondProfileDB()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range prof {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi-lo < 0.5 {
		t.Errorf("condition number flat across band (%v–%v dB); expected frequency selectivity", lo, hi)
	}
	// Figure 8's axis spans 0–15 dB; a sane testbed lands inside.
	med := stats.Median(prof)
	if med < 0 || med > 30 {
		t.Errorf("median condition number %v dB implausible", med)
	}
}

func TestNewMIMOLinkValidation(t *testing.T) {
	env := propagation.NewEnvironment(6, 5, 3)
	if _, err := NewMIMOLink(env, nil, nil, ofdm.WiFi20(), nil, 1); err == nil {
		t.Error("empty antenna sets accepted")
	}
	tx := []propagation.Node{{Pos: geom.V(1, 1, 1)}}
	rx := []propagation.Node{{Pos: geom.V(4, 4, 1)}}
	if _, err := NewMIMOLink(env, tx, rx, ofdm.Grid{}, nil, 1); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestAveragedTimingAdvances(t *testing.T) {
	// A sanity check that MeasureAveraged advances simulated time: with a
	// moving receiver (Doppler), averaging over a long window smears the
	// channel relative to a frozen-time average.
	env := propagation.NewEnvironment(6, 5, 3)
	omni := rfphys.Omni{PeakGainDBi: 2}
	tx := []propagation.Node{{Pos: geom.V(1.5, 2.5, 1.5), Pattern: omni}}
	rx := []propagation.Node{{Pos: geom.V(4, 2.7, 1.3), Pattern: omni, Velocity: geom.V(0.5, 0, 0)}}
	ml, err := NewMIMOLink(env, tx, rx, ofdm.WiFi20(), nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := ml.MeasureAveraged(nil, 20, Timing{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ml.MeasureAveraged(nil, 20, Timing{PerMeasurement: 50 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The smeared average should have smaller magnitude than the frozen
	// one (incoherent combining), at least on most subcarriers.
	var smaller int
	for k := 0; k < frozen.NumSubcarriers(); k++ {
		if slow.Matrices[k].FrobeniusNorm() < frozen.Matrices[k].FrobeniusNorm() {
			smaller++
		}
	}
	if smaller < frozen.NumSubcarriers()/2 {
		t.Errorf("Doppler smearing not visible: only %d/%d subcarriers shrank", smaller, frozen.NumSubcarriers())
	}
}
