// Package radio simulates the software-defined-radio measurement pipeline
// of the paper's exploratory study (§3.1–3.2): WARP/USRP-like endpoints
// transmit OFDM sounding frames through the multipath channel, the
// receiver estimates CSI from the training sequence, and a sweep engine
// steps the PRESS array through its configurations — including the
// testbed's measurement latency, which is what makes the coherence-time
// challenge of §2 concrete.
package radio

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"press/internal/element"
	"press/internal/obs"
	"press/internal/obs/prof"
	"press/internal/obs/scope"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/rfphys"
)

// Radio is one simulated SDR endpoint.
type Radio struct {
	Node propagation.Node
	// TxPowerDBm is the total transmit power, split evenly across used
	// subcarriers. WARP boards run around 10–18 dBm.
	TxPowerDBm float64
	// NoiseFigureDB is the receive noise figure; SDR front ends sit
	// around 5–8 dB.
	NoiseFigureDB float64
}

// Timing models the testbed's measurement latency. The paper reports that
// sweeping all 64 configurations takes about 5 seconds — ~78 ms per
// configuration — far beyond the channel coherence time, which is why
// they iterate the sweep 10 times and use statistics instead (§3.2).
type Timing struct {
	// PerMeasurement is the wall-clock cost of one configuration
	// measurement (frame exchange + host processing).
	PerMeasurement time.Duration
	// SwitchLatency is the extra cost of actuating the array between
	// configurations (control-plane plus RF-switch settling).
	SwitchLatency time.Duration
}

// PrototypeTiming reproduces the paper's ~5 s / 64 configs testbed.
var PrototypeTiming = Timing{PerMeasurement: 70 * time.Millisecond, SwitchLatency: 8 * time.Millisecond}

// SweepDuration returns how long measuring n configurations takes.
func (t Timing) SweepDuration(n int) time.Duration {
	return time.Duration(n) * (t.PerMeasurement + t.SwitchLatency)
}

// Link is a measurable TX→RX link through an environment, optionally
// modulated by a PRESS array.
type Link struct {
	Env  *propagation.Environment
	TX   *Radio
	RX   *Radio
	Grid ofdm.Grid
	// Array is the PRESS array between the endpoints; nil means a bare
	// link (the no-PRESS baseline).
	Array *element.Array
	// Faults injects element failures (§2 maintenance): commands to
	// faulty elements are overridden physically, invisible to the
	// controller except through the measured channel.
	Faults element.Faults
	// NumTraining is the training symbols per sounding frame (default 4).
	NumTraining int
	// Obs, when set, receives the measurement pipeline's telemetry:
	// CSI-measurement counters, channel-solve latency histograms, and
	// sweep spans. The nil default adds one pointer check per measurement.
	Obs *obs.Registry
	// Prof, when set, accounts the measurement pipeline's work to phases
	// (array path enumeration → path_trace, response evaluation →
	// channel_sum, sounding-frame synthesis → frame_synth, estimation →
	// estimate, sweeps → sweep). Nil costs one pointer check per phase.
	Prof *prof.Collector
	// OnCSI, when set, receives each successful channel estimate's
	// per-subcarrier SNR curve — the hook internal/obs/health uses to
	// watch live channel state without radio depending on it. The slice
	// is the estimate's own; observers must copy, not retain.
	OnCSI func(snrDB []float64)

	rng      *rand.Rand
	envPaths []propagation.Path // cached: environment does not switch
}

// AttachScope points the link's telemetry at a session scope: registry,
// phase accounting, and the CSI hook feeding the scope's health monitor
// and flight log. A nil scope detaches (all sinks nil).
func (l *Link) AttachScope(sc *scope.Scope) {
	l.Obs = sc.Registry()
	l.Prof = sc.Prof()
	l.OnCSI = sc.CSIHook()
}

// NewLink wires up a link. The seed makes every measurement sequence
// reproducible. It returns an error for an invalid grid or environment.
func NewLink(env *propagation.Environment, tx, rx *Radio, grid ofdm.Grid, arr *element.Array, seed uint64) (*Link, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	l := &Link{
		Env: env, TX: tx, RX: rx, Grid: grid, Array: arr,
		NumTraining: 4,
		rng:         rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
	}
	l.envPaths = propagation.TracePaths(env, tx.Node, rx.Node, l.Wavelength())
	return l, nil
}

// Wavelength returns the carrier wavelength of the link's grid.
func (l *Link) Wavelength() float64 { return rfphys.Wavelength(l.Grid.CenterHz) }

// InvalidateEnvironment re-traces the cached environment paths; call it
// after mutating Env (moving a blocker, adding scatterers).
func (l *Link) InvalidateEnvironment() {
	l.envPaths = propagation.TracePaths(l.Env, l.TX.Node, l.RX.Node, l.Wavelength())
}

// Paths returns the full path set under cfg: cached environment paths
// plus the array's switched paths. A nil array (or nil cfg with a nil
// array) yields the bare environment.
func (l *Link) Paths(cfg element.Config) []propagation.Path {
	if l.Array == nil {
		return l.envPaths
	}
	sp := l.Prof.Start(prof.PhaseTrace)
	var ep []propagation.Path
	if len(l.Faults) > 0 {
		ep = l.Array.PathsWithFaults(l.Env, l.TX.Node, l.RX.Node, cfg, l.Faults, l.Wavelength())
	} else {
		ep = l.Array.Paths(l.Env, l.TX.Node, l.RX.Node, cfg, l.Wavelength())
	}
	l.Prof.Add(prof.PhaseTrace, prof.AuxImages, int64(l.Array.N()))
	l.Prof.Add(prof.PhaseTrace, prof.AuxPathsKept, int64(len(ep)))
	l.Prof.Add(prof.PhaseTrace, prof.AuxPathsCulled, int64(l.Array.N()-len(ep)))
	sp.End()
	out := make([]propagation.Path, 0, len(l.envPaths)+len(ep))
	out = append(out, l.envPaths...)
	out = append(out, ep...)
	return out
}

// TrueResponse returns the noiseless channel response under cfg at time t
// — ground truth for tests and for quantifying estimator error.
func (l *Link) TrueResponse(cfg element.Config, t float64) []complex128 {
	paths := l.Paths(cfg)
	freqs := l.Grid.Frequencies()
	sp := l.Prof.Start(prof.PhaseChannelSum)
	h := propagation.Response(paths, freqs, t)
	l.Prof.Add(prof.PhaseChannelSum, prof.AuxSubcarrierEvals, int64(len(h)))
	l.Prof.Add(prof.PhaseChannelSum, prof.AuxPathTerms, int64(len(paths)*len(h)))
	sp.End()
	return h
}

// perSubcarrierTxPowerW returns the transmit power allocated to each used
// subcarrier.
func (l *Link) perSubcarrierTxPowerW() float64 {
	return rfphys.DBmToWatts(l.TX.TxPowerDBm) / float64(l.Grid.NumUsed())
}

// perSubcarrierNoiseW returns the receiver noise power per subcarrier.
func (l *Link) perSubcarrierNoiseW() float64 {
	return rfphys.ThermalNoiseWatts(l.Grid.SpacingHz, l.RX.NoiseFigureDB)
}

// MeasureCSI transmits one sounding frame under cfg at time t and returns
// the receiver's channel estimate: the simulated equivalent of the
// paper's "the receiver estimates the channel state information from the
// training sequences in the frame".
func (l *Link) MeasureCSI(cfg element.Config, t float64) (*ofdm.CSI, error) {
	if l.Obs == nil {
		return l.measureResponse(l.TrueResponse(cfg, t))
	}
	start := time.Now()
	h := l.TrueResponse(cfg, t)
	l.Obs.Histogram("radio_channel_solve_seconds", obs.LatencyBuckets).
		ObserveDuration(time.Since(start))
	l.Obs.Counter("radio_csi_measurements_total").Inc()
	return l.measureResponse(h)
}

// MeasureCSIContinuous is MeasureCSI for continuously-variable phase
// hardware (§4.1): the array contributes paths at arbitrary reflection
// phases instead of discrete stub states.
func (l *Link) MeasureCSIContinuous(phases element.ContinuousConfig, t float64) (*ofdm.CSI, error) {
	start := time.Time{}
	if l.Obs != nil {
		start = time.Now()
	}
	paths := l.envPaths
	if l.Array != nil {
		tsp := l.Prof.Start(prof.PhaseTrace)
		ep := l.Array.ContinuousPaths(l.Env, l.TX.Node, l.RX.Node, phases, l.Wavelength())
		l.Prof.Add(prof.PhaseTrace, prof.AuxImages, int64(l.Array.N()))
		l.Prof.Add(prof.PhaseTrace, prof.AuxPathsKept, int64(len(ep)))
		l.Prof.Add(prof.PhaseTrace, prof.AuxPathsCulled, int64(l.Array.N()-len(ep)))
		tsp.End()
		paths = append(append([]propagation.Path(nil), paths...), ep...)
	}
	freqs := l.Grid.Frequencies()
	csp := l.Prof.Start(prof.PhaseChannelSum)
	h := propagation.Response(paths, freqs, t)
	l.Prof.Add(prof.PhaseChannelSum, prof.AuxSubcarrierEvals, int64(len(h)))
	l.Prof.Add(prof.PhaseChannelSum, prof.AuxPathTerms, int64(len(paths)*len(h)))
	csp.End()
	if l.Obs != nil {
		l.Obs.Histogram("radio_channel_solve_seconds", obs.LatencyBuckets).
			ObserveDuration(time.Since(start))
		l.Obs.Counter("radio_csi_measurements_total").Inc()
	}
	return l.measureResponse(h)
}

// measureResponse simulates the sounding frame over a known true channel
// response and runs the receiver's estimator.
func (l *Link) measureResponse(h []complex128) (*ofdm.CSI, error) {
	tx := ofdm.TrainingSequence(l.Grid)
	txPw := l.perSubcarrierTxPowerW()
	noise := l.perSubcarrierNoiseW()

	amp := complex(math.Sqrt(txPw), 0)
	sigma := math.Sqrt(noise / 2)
	nSym := l.NumTraining
	if nSym < 1 {
		nSym = 1
	}
	sp := l.Prof.Start(prof.PhaseFrameSynth)
	rx := make([][]complex128, nSym)
	for s := range rx {
		rx[s] = make([]complex128, len(h))
		for k := range h {
			n := complex(l.rng.NormFloat64()*sigma, l.rng.NormFloat64()*sigma)
			rx[s][k] = amp*h[k]*tx[k] + n
		}
	}
	l.Prof.Add(prof.PhaseFrameSynth, prof.AuxSymbols, int64(nSym))
	sp.End()
	csi, err := ofdm.EstimateProf(l.Prof, l.Grid, rx, tx, txPw, noise)
	if err == nil && l.OnCSI != nil {
		l.OnCSI(csi.SNRdB)
	}
	return csi, err
}

// Measurement is one configuration's measured CSI within a sweep.
type Measurement struct {
	ConfigIdx int
	Config    element.Config
	CSI       *ofdm.CSI
	// At is the simulation time of the measurement; under Doppler the
	// channel decorrelates across a slow sweep, exactly the §2 problem.
	At time.Duration
	// TraceID correlates the measurement with its "radio"-track span in
	// the Chrome trace export; zero when the link's registry carries no
	// TraceLog (the default — IDs are process-unique, so assigning them
	// unconditionally would break bit-identical replays).
	TraceID uint64
}

// SNRCurves flattens measurements into per-config SNR vectors, the shape
// the statistics in internal/stats consume.
func SNRCurves(ms []Measurement) [][]float64 {
	out := make([][]float64, len(ms))
	for i, m := range ms {
		out[i] = m.CSI.SNRdB
	}
	return out
}

// Sweep measures every configuration of the link's array once, in
// mixed-radix order, advancing simulated time by the timing model between
// measurements. It errors on links without an array.
func (l *Link) Sweep(timing Timing, start time.Duration) ([]Measurement, error) {
	if l.Array == nil {
		return nil, fmt.Errorf("radio: Sweep needs a PRESS array on the link")
	}
	sp := obs.StartSpan(l.Obs, "radio/sweep")
	psp := l.Prof.Start(prof.PhaseSweep)
	wall := time.Time{}
	if l.Obs != nil {
		wall = time.Now()
	}
	n := l.Array.NumConfigs()
	out := make([]Measurement, 0, n)
	at := start
	tl := l.Obs.TraceLog()
	var sweepErr error
	l.Array.EachConfig(func(idx int, c element.Config) bool {
		var traceID uint64
		wallStart := time.Time{}
		if tl != nil {
			traceID = obs.NewTraceID()
			wallStart = time.Now()
		}
		csi, err := l.MeasureCSI(c, at.Seconds())
		if err != nil {
			sweepErr = fmt.Errorf("radio: config %d: %w", idx, err)
			return false
		}
		if tl != nil {
			tl.Record("radio", "radio/measure", traceID, wallStart, time.Since(wallStart),
				map[string]any{"config": idx, "at_s": at.Seconds()})
		}
		out = append(out, Measurement{ConfigIdx: idx, Config: c.Clone(), CSI: csi, At: at, TraceID: traceID})
		at += timing.PerMeasurement + timing.SwitchLatency
		return true
	})
	l.Prof.Add(prof.PhaseSweep, prof.AuxConfigs, int64(len(out)))
	psp.End()
	sp.End()
	if sweepErr != nil {
		return nil, sweepErr
	}
	if l.Obs != nil {
		l.Obs.Counter("radio_sweeps_total").Inc()
		l.Obs.Histogram("radio_sweep_seconds", obs.LatencyBuckets).
			ObserveDuration(time.Since(wall))
	}
	return out, nil
}

// SweepTrials repeats Sweep `trials` times back-to-back — the paper's
// "we iterate through the 64 combinations 10 times and calculate
// statistics" — returning one measurement slice per trial.
func (l *Link) SweepTrials(timing Timing, trials int) ([][]Measurement, error) {
	if trials < 1 {
		return nil, fmt.Errorf("radio: trials must be positive")
	}
	out := make([][]Measurement, trials)
	var at time.Duration
	for tr := 0; tr < trials; tr++ {
		ms, err := l.Sweep(timing, at)
		if err != nil {
			return nil, err
		}
		out[tr] = ms
		at = ms[len(ms)-1].At + timing.PerMeasurement + timing.SwitchLatency
	}
	return out, nil
}
