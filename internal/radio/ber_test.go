package radio

import (
	"testing"

	"press/internal/element"
	"press/internal/ofdm"
)

func TestMeasureBERCleanChannel(t *testing.T) {
	// The testbed's SNR sits well above 20 dB on most subcarriers: BPSK
	// and QPSK payloads should come through essentially error-free.
	link := testbed(t, 41)
	for _, m := range []ofdm.Modulation{ofdm.BPSK, ofdm.QPSK} {
		rep, err := link.MeasureBER(element.Config{0, 0, 0}, m, 20000, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BER > 1e-3 {
			t.Errorf("%v BER = %v on a strong channel", m, rep.BER)
		}
		if rep.BitsSent < 20000 {
			t.Errorf("%v sent only %d bits", m, rep.BitsSent)
		}
	}
}

func TestMeasureBERDenseConstellationWorse(t *testing.T) {
	link := testbed(t, 42)
	cfg := element.Config{1, 2, 0}
	qpsk, err := link.MeasureBER(cfg, ofdm.QPSK, 50000, 0)
	if err != nil {
		t.Fatal(err)
	}
	qam64, err := link.MeasureBER(cfg, ofdm.QAM64, 50000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if qam64.BER < qpsk.BER {
		t.Errorf("64-QAM BER (%v) below QPSK (%v) on the same channel", qam64.BER, qpsk.BER)
	}
}

func TestMeasureBERConfigMatters(t *testing.T) {
	// Find the best and worst configs by min-SNR and confirm the BER of a
	// dense constellation orders the same way — the end-to-end payoff of
	// null shifting.
	link := testbed(t, 43)
	ms, err := link.Sweep(Timing{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bestI, worstI := 0, 0
	for i, m := range ms {
		if m.CSI.MinSNRdB() > ms[bestI].CSI.MinSNRdB() {
			bestI = i
		}
		if m.CSI.MinSNRdB() < ms[worstI].CSI.MinSNRdB() {
			worstI = i
		}
	}
	// Only meaningful when the configs actually separate.
	if ms[bestI].CSI.MinSNRdB()-ms[worstI].CSI.MinSNRdB() < 6 {
		t.Skip("configs do not separate enough at this seed")
	}
	best, err := link.MeasureBER(ms[bestI].Config, ofdm.QAM64, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := link.MeasureBER(ms[worstI].Config, ofdm.QAM64, 100000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.BER > worst.BER {
		t.Errorf("best config BER %v above worst config BER %v", best.BER, worst.BER)
	}
}

func TestMeasureBERValidation(t *testing.T) {
	link := testbed(t, 44)
	if _, err := link.MeasureBER(element.Config{0, 0, 0}, ofdm.BPSK, 0, 0); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := link.MeasureBER(element.Config{0, 0, 0}, ofdm.Modulation(9), 100, 0); err == nil {
		t.Error("unknown modulation accepted")
	}
}
