package radio

import (
	"fmt"
	"math"

	"press/internal/element"
	"press/internal/ofdm"
)

// BERReport is the outcome of one payload transmission experiment.
type BERReport struct {
	Modulation ofdm.Modulation
	BitsSent   int
	BitErrors  int
	// BER is BitErrors/BitsSent.
	BER float64
	// Symbols is the OFDM symbol count transmitted.
	Symbols int
}

// MeasureBER transmits random payload bits under cfg at time t and
// returns the measured bit error rate: training-based channel estimation
// followed by per-subcarrier equalization and hard-decision demodulation
// — the link-level consequence of the per-subcarrier SNR the paper
// reports. At least nBits bits are sent (rounded up to whole OFDM
// symbols).
func (l *Link) MeasureBER(cfg element.Config, m ofdm.Modulation, nBits int, t float64) (*BERReport, error) {
	if nBits < 1 {
		return nil, fmt.Errorf("radio: nBits must be positive")
	}
	bps := m.BitsPerSymbol()
	if bps == 0 {
		return nil, fmt.Errorf("radio: unsupported modulation %v", m)
	}
	// The receiver estimates the channel from training first.
	csi, err := l.MeasureCSI(cfg, t)
	if err != nil {
		return nil, err
	}
	h := l.TrueResponse(cfg, t)

	nUsed := l.Grid.NumUsed()
	bitsPerOFDM := nUsed * bps
	symbols := (nBits + bitsPerOFDM - 1) / bitsPerOFDM

	txPw := l.perSubcarrierTxPowerW()
	noise := l.perSubcarrierNoiseW()
	amp := complex(math.Sqrt(txPw), 0)
	sigma := math.Sqrt(noise / 2)

	report := &BERReport{Modulation: m, Symbols: symbols}
	for s := 0; s < symbols; s++ {
		bits := make([]uint8, bitsPerOFDM)
		for i := range bits {
			bits[i] = uint8(l.rng.IntN(2))
		}
		x, err := ofdm.Modulate(m, bits)
		if err != nil {
			return nil, err
		}
		// Through the channel, equalized with the *estimated* CSI.
		eq := make([]complex128, nUsed)
		for k := 0; k < nUsed; k++ {
			n := complex(l.rng.NormFloat64()*sigma, l.rng.NormFloat64()*sigma)
			y := amp*h[k]*x[k] + n
			den := amp * csi.H[k]
			if den == 0 {
				eq[k] = 0 // unequalizable: decides randomly toward 0
				continue
			}
			eq[k] = y / den
		}
		rxBits, err := ofdm.Demodulate(m, eq)
		if err != nil {
			return nil, err
		}
		errs, err := ofdm.CountBitErrors(bits, rxBits)
		if err != nil {
			return nil, err
		}
		report.BitsSent += len(bits)
		report.BitErrors += errs
	}
	report.BER = float64(report.BitErrors) / float64(report.BitsSent)
	return report, nil
}
