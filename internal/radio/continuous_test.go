package radio

import (
	"math"
	"testing"

	"press/internal/element"
)

func TestMeasureCSIContinuousMatchesDiscrete(t *testing.T) {
	link := testbed(t, 31)
	// Discrete config {0,1,2} corresponds to phases {0, π/2, π}.
	disc, err := link.MeasureCSI(element.Config{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	link2 := testbed(t, 31) // same seed → same noise stream
	cont, err := link2.MeasureCSIContinuous(element.ContinuousConfig{0, math.Pi / 2, math.Pi}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range disc.SNRdB {
		if math.Abs(disc.SNRdB[k]-cont.SNRdB[k]) > 1e-9 {
			t.Fatalf("subcarrier %d: discrete %v vs continuous %v", k, disc.SNRdB[k], cont.SNRdB[k])
		}
	}
}

func TestMeasureCSIContinuousOffEqualsTerminated(t *testing.T) {
	link := testbed(t, 32)
	term, _ := link.Array.AllTerminated()
	disc, err := link.MeasureCSI(term, 0)
	if err != nil {
		t.Fatal(err)
	}
	link2 := testbed(t, 32)
	cont, err := link2.MeasureCSIContinuous(
		element.ContinuousConfig{element.Off, element.Off, element.Off}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range disc.SNRdB {
		if math.Abs(disc.SNRdB[k]-cont.SNRdB[k]) > 1e-9 {
			t.Fatalf("subcarrier %d differs between Off and terminated", k)
		}
	}
}

func TestMeasureCSIContinuousIntermediatePhaseInterpolates(t *testing.T) {
	// A phase between two bank states produces a channel between (or at
	// least different from) the two — continuity of the forward model.
	link := testbed(t, 33)
	h0 := link.TrueResponse(element.Config{0, 3, 3}, 0)

	link2 := testbed(t, 33)
	phases := element.ContinuousConfig{math.Pi / 4, element.Off, element.Off}
	csi, err := link2.MeasureCSIContinuous(phases, 0)
	if err != nil {
		t.Fatal(err)
	}
	hPi2 := link.TrueResponse(element.Config{1, 3, 3}, 0)
	var differs bool
	for k := range h0 {
		if h0[k] != hPi2[k] && csi.H[k] != 0 {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("intermediate phase indistinguishable from bank states")
	}
}
