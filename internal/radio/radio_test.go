package radio

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"time"

	"press/internal/element"
	"press/internal/geom"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/rfphys"
	"press/internal/stats"
)

// testbed builds the standard NLoS bench: 6×5×3 room, blocked direct
// path, scatterers, 3 parabolic SP4T elements between the endpoints.
func testbed(t *testing.T, seed uint64) *Link {
	t.Helper()
	env := propagation.NewEnvironment(6, 5, 3)
	env.AddScatterers(rand.New(rand.NewPCG(seed, 99)), 6, 30)
	env.Blockers = append(env.Blockers,
		geom.NewBlocker(geom.V(2.6, 2.2, 0), geom.V(2.9, 3.0, 2.2), 35))

	tx := &Radio{
		Node:       propagation.Node{Pos: geom.V(1.5, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &Radio{
		Node:          propagation.Node{Pos: geom.V(4, 2.7, 1.3), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	rng := rand.New(rand.NewPCG(seed, 7))
	pos, err := element.DefaultPlacement.Place(rng, env.Room, tx.Node.Pos, rx.Node.Pos, 3)
	if err != nil {
		t.Fatal(err)
	}
	arr := element.NewArray(
		element.NewParabolicElement(pos[0], rx.Node.Pos),
		element.NewParabolicElement(pos[1], rx.Node.Pos),
		element.NewParabolicElement(pos[2], rx.Node.Pos),
	)
	link, err := NewLink(env, tx, rx, ofdm.WiFi20(), arr, seed)
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func TestMeasureCSIShape(t *testing.T) {
	link := testbed(t, 1)
	csi, err := link.MeasureCSI(element.Config{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(csi.SNRdB) != 52 || len(csi.H) != 52 {
		t.Fatalf("CSI has %d subcarriers", len(csi.SNRdB))
	}
}

func TestMeasuredCSITracksTruth(t *testing.T) {
	link := testbed(t, 2)
	cfg := element.Config{0, 1, 2}
	truth := link.TrueResponse(cfg, 0)
	csi, err := link.MeasureCSI(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compare channel magnitudes in dB on the strong subcarriers (deep
	// nulls are noise-dominated by construction).
	med := stats.Median(csi.SNRdB)
	for k := range truth {
		if csi.SNRdB[k] < med-10 {
			continue
		}
		est := rfphys.AmplitudeToDB(cmplx.Abs(csi.H[k]))
		want := rfphys.AmplitudeToDB(cmplx.Abs(truth[k]))
		if math.Abs(est-want) > 3 {
			t.Fatalf("subcarrier %d: estimated %v dB, truth %v dB", k, est, want)
		}
	}
}

func TestMeasuredSNRInPlausibleRange(t *testing.T) {
	// The paper's Figure 4 axes run 0–50 dB; the simulated testbed should
	// produce median SNRs in that range, not 120 dB or -40 dB.
	link := testbed(t, 3)
	csi, err := link.MeasureCSI(element.Config{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(csi.SNRdB)
	if med < 10 || med > 60 {
		t.Errorf("median subcarrier SNR = %v dB; outside the plausible 10–60 window", med)
	}
}

func TestConfigChangesChannel(t *testing.T) {
	link := testbed(t, 4)
	all0 := link.TrueResponse(element.Config{0, 0, 0}, 0)
	allPi := link.TrueResponse(element.Config{2, 2, 2}, 0)
	var maxDiff float64
	for k := range all0 {
		if d := cmplx.Abs(all0[k] - allPi[k]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff == 0 {
		t.Fatal("switching all element phases left the channel untouched")
	}
	// Terminated config must equal the bare environment.
	term, _ := link.Array.AllTerminated()
	termResp := link.TrueResponse(term, 0)
	bare := propagation.Response(link.envPaths, link.Grid.Frequencies(), 0)
	for k := range bare {
		if cmplx.Abs(termResp[k]-bare[k]) > 1e-18 {
			t.Fatal("terminated array does not match bare environment")
		}
	}
}

func TestMeasurementDeterministicPerSeed(t *testing.T) {
	a := testbed(t, 5)
	b := testbed(t, 5)
	ca, err := a.MeasureCSI(element.Config{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.MeasureCSI(element.Config{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ca.SNRdB {
		if ca.SNRdB[k] != cb.SNRdB[k] {
			t.Fatal("same seed produced different measurements")
		}
	}
}

func TestSweepCoversAllConfigs(t *testing.T) {
	link := testbed(t, 6)
	ms, err := link.Sweep(PrototypeTiming, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 64 {
		t.Fatalf("sweep measured %d configs, want 64", len(ms))
	}
	seen := make(map[int]bool)
	for _, m := range ms {
		if seen[m.ConfigIdx] {
			t.Fatalf("config %d measured twice", m.ConfigIdx)
		}
		seen[m.ConfigIdx] = true
		if len(m.Config) != 3 {
			t.Fatal("config not retained")
		}
	}
	// The paper: "it takes about 5 seconds to measure all of the
	// combinations".
	dur := PrototypeTiming.SweepDuration(64)
	if dur < 4*time.Second || dur > 6*time.Second {
		t.Errorf("prototype sweep duration = %v, want ≈5 s", dur)
	}
	last := ms[len(ms)-1].At
	if last != PrototypeTiming.SweepDuration(63) {
		t.Errorf("last measurement at %v, want %v", last, PrototypeTiming.SweepDuration(63))
	}
}

func TestSweepTrials(t *testing.T) {
	link := testbed(t, 7)
	trials, err := link.SweepTrials(Timing{PerMeasurement: time.Millisecond}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 3 {
		t.Fatalf("got %d trials", len(trials))
	}
	// Time advances monotonically across trials.
	if trials[1][0].At <= trials[0][63].At {
		t.Error("trial 2 does not start after trial 1")
	}
	// Noise differs between trials but truth is identical (static room):
	// per-config SNR curves should be highly similar but not identical.
	var diff float64
	for k := range trials[0][0].CSI.SNRdB {
		diff += math.Abs(trials[0][0].CSI.SNRdB[k] - trials[1][0].CSI.SNRdB[k])
	}
	if diff == 0 {
		t.Error("independent trials produced identical noise")
	}
	if _, err := link.SweepTrials(Timing{}, 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestSweepRequiresArray(t *testing.T) {
	link := testbed(t, 8)
	link.Array = nil
	if _, err := link.Sweep(PrototypeTiming, 0); err == nil {
		t.Error("sweep without array accepted")
	}
}

func TestSNRCurves(t *testing.T) {
	link := testbed(t, 9)
	ms, err := link.Sweep(Timing{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	curves := SNRCurves(ms)
	if len(curves) != 64 || len(curves[0]) != 52 {
		t.Fatalf("curves shape %dx%d", len(curves), len(curves[0]))
	}
}

func TestInvalidateEnvironment(t *testing.T) {
	link := testbed(t, 10)
	before := link.TrueResponse(element.Config{3, 3, 3}, 0)
	// Drop a big metal cabinet into the room; stale cache would hide it.
	link.Env.Blockers = append(link.Env.Blockers,
		geom.NewBlocker(geom.V(3.2, 2.2, 0), geom.V(3.6, 3.2, 2.5), 25))
	link.InvalidateEnvironment()
	after := link.TrueResponse(element.Config{3, 3, 3}, 0)
	var diff float64
	for k := range before {
		diff += cmplx.Abs(before[k] - after[k])
	}
	if diff == 0 {
		t.Error("environment change had no effect after invalidation")
	}
}

func TestNewLinkValidation(t *testing.T) {
	env := propagation.NewEnvironment(6, 5, 3)
	tx := &Radio{Node: propagation.Node{Pos: geom.V(1, 1, 1)}}
	rx := &Radio{Node: propagation.Node{Pos: geom.V(4, 4, 1)}}
	if _, err := NewLink(env, tx, rx, ofdm.Grid{}, nil, 1); err == nil {
		t.Error("invalid grid accepted")
	}
	env.MaxOrder = 99
	if _, err := NewLink(env, tx, rx, ofdm.WiFi20(), nil, 1); err == nil {
		t.Error("invalid environment accepted")
	}
}
