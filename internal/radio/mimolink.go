package radio

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"press/internal/element"
	"press/internal/geom"
	"press/internal/mimo"
	"press/internal/obs"
	"press/internal/obs/prof"
	"press/internal/obs/scope"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/rfphys"
)

// MIMOLink is a multi-antenna link: every TX antenna × RX antenna pair is
// traced independently (antennas sit at different positions, so their
// multipath differs — that is what makes the channel matrix non-singular).
// It reproduces §3.2.3's setup: a 2×2 transceiver pair measured across
// all PRESS configurations.
type MIMOLink struct {
	Env    *propagation.Environment
	TXAnts []propagation.Node
	RXAnts []propagation.Node
	// TxPowerDBm and NoiseFigureDB play the same roles as on Link.
	TxPowerDBm    float64
	NoiseFigureDB float64
	Grid          ofdm.Grid
	Array         *element.Array
	// NumTraining is the per-snapshot training length (default 4).
	NumTraining int
	// Obs, when set, receives channel-solve telemetry like Link.Obs.
	Obs *obs.Registry
	// Prof, when set, accounts per-pair tracing and response evaluation
	// like Link.Prof.
	Prof *prof.Collector

	rng      *rand.Rand
	envPaths [][][]propagation.Path // [rx][tx] cached environment paths
}

// AttachScope points the MIMO link's telemetry at a session scope
// (registry and phase accounting; MIMO links have no per-curve CSI
// hook — condition profiles flow through Scope.ObserveCondProfile).
func (m *MIMOLink) AttachScope(sc *scope.Scope) {
	m.Obs = sc.Registry()
	m.Prof = sc.Prof()
}

// NewMIMOLink wires a MIMO link and pre-traces the environment for every
// antenna pair.
func NewMIMOLink(env *propagation.Environment, txAnts, rxAnts []propagation.Node,
	grid ofdm.Grid, arr *element.Array, seed uint64) (*MIMOLink, error) {

	if len(txAnts) == 0 || len(rxAnts) == 0 {
		return nil, fmt.Errorf("radio: MIMO link needs at least one antenna per side")
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	m := &MIMOLink{
		Env: env, TXAnts: txAnts, RXAnts: rxAnts,
		TxPowerDBm: 15, NoiseFigureDB: 6,
		Grid: grid, Array: arr, NumTraining: 4,
		rng: rand.New(rand.NewPCG(seed, 0x2545f4914f6cdd1d)),
	}
	lambda := rfphys.Wavelength(grid.CenterHz)
	m.envPaths = make([][][]propagation.Path, len(rxAnts))
	for i, rx := range rxAnts {
		m.envPaths[i] = make([][]propagation.Path, len(txAnts))
		for j, tx := range txAnts {
			m.envPaths[i][j] = propagation.TracePaths(env, tx, rx, lambda)
		}
	}
	return m, nil
}

// TrueChannel returns the noiseless per-subcarrier channel matrices under
// cfg at time t.
func (m *MIMOLink) TrueChannel(cfg element.Config, t float64) (*mimo.Channel, error) {
	var start time.Time
	if m.Obs != nil {
		start = time.Now()
		defer func() {
			m.Obs.Histogram("radio_channel_solve_seconds", obs.LatencyBuckets).
				ObserveDuration(time.Since(start))
			m.Obs.Counter("radio_mimo_solves_total").Inc()
		}()
	}
	lambda := rfphys.Wavelength(m.Grid.CenterHz)
	freqs := m.Grid.Frequencies()
	resp := make([][][]complex128, len(m.RXAnts))
	for i, rx := range m.RXAnts {
		resp[i] = make([][]complex128, len(m.TXAnts))
		for j, tx := range m.TXAnts {
			paths := m.envPaths[i][j]
			if m.Array != nil {
				tsp := m.Prof.Start(prof.PhaseTrace)
				ep := m.Array.Paths(m.Env, tx, rx, cfg, lambda)
				m.Prof.Add(prof.PhaseTrace, prof.AuxImages, int64(m.Array.N()))
				m.Prof.Add(prof.PhaseTrace, prof.AuxPathsKept, int64(len(ep)))
				m.Prof.Add(prof.PhaseTrace, prof.AuxPathsCulled, int64(m.Array.N()-len(ep)))
				tsp.End()
				paths = append(append([]propagation.Path(nil), paths...), ep...)
			}
			csp := m.Prof.Start(prof.PhaseChannelSum)
			resp[i][j] = propagation.Response(paths, freqs, t)
			m.Prof.Add(prof.PhaseChannelSum, prof.AuxSubcarrierEvals, int64(len(freqs)))
			m.Prof.Add(prof.PhaseChannelSum, prof.AuxPathTerms, int64(len(paths)*len(freqs)))
			csp.End()
		}
	}
	ssp := m.Prof.Start(prof.PhaseSolve)
	ch, err := mimo.FromResponses(resp)
	if err == nil {
		m.Prof.Add(prof.PhaseSolve, prof.AuxSolves, int64(len(ch.Matrices)))
	}
	ssp.End()
	return ch, err
}

// MeasureChannel returns one noisy channel snapshot under cfg at time t:
// the true matrices perturbed by the channel-estimation error an SDR
// would incur (per-entry complex Gaussian with variance noise/(P·S) for S
// training symbols).
func (m *MIMOLink) MeasureChannel(cfg element.Config, t float64) (*mimo.Channel, error) {
	ch, err := m.TrueChannel(cfg, t)
	if err != nil {
		return nil, err
	}
	txPw := rfphys.DBmToWatts(m.TxPowerDBm) / float64(m.Grid.NumUsed()) / float64(len(m.TXAnts))
	noise := rfphys.ThermalNoiseWatts(m.Grid.SpacingHz, m.NoiseFigureDB)
	nTrain := m.NumTraining
	if nTrain < 1 {
		nTrain = 1
	}
	sigma := math.Sqrt(noise / txPw / float64(nTrain) / 2)
	for _, mat := range ch.Matrices {
		for i := range mat.Data {
			mat.Data[i] += complex(m.rng.NormFloat64()*sigma, m.rng.NormFloat64()*sigma)
		}
	}
	return ch, nil
}

// MeasureAveraged measures `snapshots` successive channel snapshots under
// cfg, spaced by the timing model, and returns their element-wise mean —
// Figure 8's "mean of 50 successive channel measurements".
//
// When every endpoint is static the true channel is time-invariant, so
// the truth is traced once and only the noise is redrawn per snapshot —
// a large win for the 64-config × 50-snapshot Figure 8 sweep.
func (m *MIMOLink) MeasureAveraged(cfg element.Config, snapshots int, timing Timing, start time.Duration) (*mimo.Channel, error) {
	if snapshots < 1 {
		return nil, fmt.Errorf("radio: snapshots must be positive")
	}
	if m.static() {
		truth, err := m.TrueChannel(cfg, start.Seconds())
		if err != nil {
			return nil, err
		}
		// Averaging S i.i.d. noisy snapshots equals truth plus one noise
		// draw at σ/√S.
		sigma := m.estNoiseSigma() / math.Sqrt(float64(snapshots))
		for _, mat := range truth.Matrices {
			for i := range mat.Data {
				mat.Data[i] += complex(m.rng.NormFloat64()*sigma, m.rng.NormFloat64()*sigma)
			}
		}
		return truth, nil
	}
	snaps := make([]*mimo.Channel, 0, snapshots)
	at := start
	for s := 0; s < snapshots; s++ {
		ch, err := m.MeasureChannel(cfg, at.Seconds())
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, ch)
		at += timing.PerMeasurement
	}
	return mimo.Average(snaps)
}

// static reports whether all endpoints are stationary.
func (m *MIMOLink) static() bool {
	for _, n := range m.TXAnts {
		if n.Velocity != (geom.Vec{}) {
			return false
		}
	}
	for _, n := range m.RXAnts {
		if n.Velocity != (geom.Vec{}) {
			return false
		}
	}
	return true
}

// estNoiseSigma returns the per-entry complex-component standard deviation
// of one snapshot's estimation error.
func (m *MIMOLink) estNoiseSigma() float64 {
	txPw := rfphys.DBmToWatts(m.TxPowerDBm) / float64(m.Grid.NumUsed()) / float64(len(m.TXAnts))
	noise := rfphys.ThermalNoiseWatts(m.Grid.SpacingHz, m.NoiseFigureDB)
	nTrain := m.NumTraining
	if nTrain < 1 {
		nTrain = 1
	}
	return math.Sqrt(noise / txPw / float64(nTrain) / 2)
}
