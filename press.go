// Package press is a programmable radio environment for smart spaces — a
// faithful, simulation-backed reproduction of "Programmable Radio
// Environments for Smart Spaces" (Welkie, Shangguan, Gummeson, Hu,
// Jamieson; HotNets 2017).
//
// PRESS embeds arrays of low-cost, electronically switched antenna
// elements in the walls of a building and reconfigures indoor multipath
// propagation itself, rather than the endpoints: shifting frequency
// nulls to enhance individual links, improving large-MIMO channel
// conditioning, and partitioning spectrum between neighbouring networks.
//
// The package re-exports the library's public surface:
//
//   - Space: a PRESS-instrumented room — environment, element array, and
//     the links operating inside it, with measure/optimize/apply.
//   - Environment, Node, Blocker: the multipath world (image-method ray
//     tracing, scatterers, Doppler).
//   - Element, Array, Config, State: the switched reflector substrate of
//     the paper's Figure 3.
//   - Radio, Link, MIMOLink: the OFDM measurement pipeline (training-
//     based CSI estimation, per-subcarrier SNR, 2×2 channel matrices).
//   - Objective and Searcher: the control plane's optimization loop with
//     coherence-time budgets.
//   - Agent, Controller: the wire protocol between a controller and the
//     wall-embedded element agents.
//
// A minimal session:
//
//	env := press.NewEnvironment(12, 9, 3)
//	arr := press.NewArray(
//	    press.NewParabolicElement(press.V(6, 3.2, 1.5), press.V(7.3, 4.7, 1.3)),
//	)
//	space, _ := press.NewSpace(env, arr, 42)
//	space.AddLink("ap-client", tx, rx, press.WiFi20())
//	out, _ := space.Optimize(
//	    []press.Goal{{Link: "ap-client", Objective: press.MaxMinSNR{}}},
//	    press.OptimizeOptions{},
//	)
//
// See examples/ for complete programs and internal/experiments for the
// harnesses that regenerate every figure of the paper.
package press

import (
	"io"
	"net"
	"time"

	"press/internal/cmat"
	"press/internal/control"
	"press/internal/controlplane"
	"press/internal/core"
	"press/internal/element"
	"press/internal/geom"
	"press/internal/mimo"
	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/health"
	"press/internal/obs/prof"
	"press/internal/obs/scope"
	"press/internal/obs/slo"
	"press/internal/obs/tsdb"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/radio"
	"press/internal/rfphys"
)

// Geometry.
type (
	// Vec is a 3-D point or direction in metres.
	Vec = geom.Vec
	// Room is an axis-aligned room.
	Room = geom.Room
	// Blocker is a box obstacle attenuating paths through it.
	Blocker = geom.Blocker
)

// V builds a Vec.
func V(x, y, z float64) Vec { return geom.V(x, y, z) }

// NewBlocker builds a blocker from two opposite corners and a penetration
// loss in dB.
func NewBlocker(a, b Vec, attenuationDB float64) Blocker {
	return geom.NewBlocker(a, b, attenuationDB)
}

// Propagation.
type (
	// Environment is the radio environment PRESS does not control: room,
	// wall materials, blockers, ambient scatterers.
	Environment = propagation.Environment
	// Node is a radio endpoint's antenna: position, pattern, velocity.
	Node = propagation.Node
	// Scatterer is a point scatterer contributing one extra path.
	Scatterer = propagation.Scatterer
	// Path is one propagation path: complex gain, delay, angles, Doppler.
	Path = propagation.Path
	// Material is a wall surface description.
	Material = propagation.Material
)

// NewEnvironment returns a room of the given dimensions (metres) with
// default wall materials and second-order ray tracing.
func NewEnvironment(x, y, z float64) *Environment {
	return propagation.NewEnvironment(x, y, z)
}

// TracePaths generates the multipath set between two nodes at wavelength
// lambdaM.
func TracePaths(env *Environment, tx, rx Node, lambdaM float64) []Path {
	return propagation.TracePaths(env, tx, rx, lambdaM)
}

// Antennas.
type (
	// Pattern is an antenna gain pattern.
	Pattern = rfphys.Pattern
	// Isotropic, Omni, Parabolic, LogPeriodic are the built-in patterns.
	Isotropic   = rfphys.Isotropic
	Omni        = rfphys.Omni
	Parabolic   = rfphys.Parabolic
	LogPeriodic = rfphys.LogPeriodic
)

// Wavelength returns the free-space wavelength of a carrier frequency.
func Wavelength(freqHz float64) float64 { return rfphys.Wavelength(freqHz) }

// DBToLinear converts a power ratio in dB to linear.
func DBToLinear(db float64) float64 { return rfphys.DBToLinear(db) }

// LinearToDB converts a linear power ratio to dB.
func LinearToDB(lin float64) float64 { return rfphys.LinearToDB(lin) }

// DBmToWatts converts dBm to watts.
func DBmToWatts(dbm float64) float64 { return rfphys.DBmToWatts(dbm) }

// ThermalNoiseWatts returns the receiver noise floor k·T·B scaled by a
// noise figure in dB.
func ThermalNoiseWatts(bwHz, noiseFigureDB float64) float64 {
	return rfphys.ThermalNoiseWatts(bwHz, noiseFigureDB)
}

// CoherenceTime returns the channel coherence time in seconds for a
// maximum Doppler shift (Tc = 9/(16π·fd)).
func CoherenceTime(dopplerHz float64) float64 { return rfphys.CoherenceTime(dopplerHz) }

// DefaultCarrierHz is Wi-Fi channel 11 (2.462 GHz), the prototype's
// carrier — the default frequency for the coherence-budget math in the
// CLIs and examples.
const DefaultCarrierHz = 2.462e9

// Elements.
type (
	// Element is one PRESS element (Figure 3 of the paper).
	Element = element.Element
	// Array is an ordered, jointly controlled set of elements.
	Array = element.Array
	// Config selects one switch state per element.
	Config = element.Config
	// State is one selectable reflection state.
	State = element.State
	// PlacementSpec generates element positions around a link.
	PlacementSpec = element.PlacementSpec
)

// Element constructors and state banks.
var (
	// DefaultPlacement is the paper's 1–2 m placement grid.
	DefaultPlacement = element.DefaultPlacement
)

// NewArray builds an array over elements.
func NewArray(elems ...*Element) *Array { return element.NewArray(elems...) }

// NewParabolicElement builds the paper's prototype element: a 14 dBi grid
// parabolic aimed at `aim` behind the SP4T stub bank.
func NewParabolicElement(pos, aim Vec) *Element { return element.NewParabolicElement(pos, aim) }

// NewOmniElement builds the omnidirectional element variant.
func NewOmniElement(pos Vec) *Element { return element.NewOmniElement(pos) }

// NewActiveElement builds an active re-radiating element with the given
// gain — the design point line-of-sight links need (§2, §3).
func NewActiveElement(pos Vec, gainDB float64) *Element {
	return element.NewActiveElement(pos, gainDB)
}

// SP4TStates returns the paper's prototype switch bank: phases 0, π/2, π
// plus the absorptive load.
func SP4TStates() []State { return element.SP4TStates() }

// FourPhaseStates returns the §3.2.2 bank: four phases, no absorber.
func FourPhaseStates() []State { return element.FourPhaseStates() }

// NPhaseStates returns n evenly spaced phases, optionally with "off".
func NPhaseStates(n int, includeOff bool) []State { return element.NPhaseStates(n, includeOff) }

// ParseState parses the paper's notation ("0.5π", "T") into a State.
func ParseState(s string) (State, error) { return element.ParseState(s) }

// Element failures (§2 operational challenges).
type (
	// Fault is one element's failure mode.
	Fault = element.Fault
	// Faults maps element index → failure.
	Faults = element.Faults
	// FaultKind classifies failures.
	FaultKind = element.FaultKind
)

// Failure kinds: a switch jammed in one state, or a dead element.
const (
	StuckAt = element.StuckAt
	Dead    = element.Dead
)

// Modulation is a payload constellation for BER experiments.
type Modulation = ofdm.Modulation

// Supported constellations.
const (
	BPSK  = ofdm.BPSK
	QPSK  = ofdm.QPSK
	QAM16 = ofdm.QAM16
	QAM64 = ofdm.QAM64
)

// OFDM and measurement.
type (
	// Grid is an OFDM subcarrier layout.
	Grid = ofdm.Grid
	// CSI is a measured channel estimate with per-subcarrier SNR.
	CSI = ofdm.CSI
	// Radio is one simulated SDR endpoint.
	Radio = radio.Radio
	// Link is a measurable TX→RX link through an environment and array.
	Link = radio.Link
	// MIMOLink is the multi-antenna variant.
	MIMOLink = radio.MIMOLink
	// Measurement is one configuration's CSI within a sweep.
	Measurement = radio.Measurement
	// Timing models measurement and actuation latency.
	Timing = radio.Timing
	// Channel is a frequency-selective MIMO channel.
	Channel = mimo.Channel
)

// PrototypeTiming reproduces the paper's ~5 s / 64-configuration testbed.
var PrototypeTiming = radio.PrototypeTiming

// WiFi20 returns the paper's 64-subcarrier/20 MHz Wi-Fi-like grid on
// channel 11 (2.462 GHz).
func WiFi20() Grid { return ofdm.WiFi20() }

// USRP102 returns the §3.2.2 102-subcarrier USRP grid.
func USRP102() Grid { return ofdm.USRP102() }

// NewLink wires a measurable link; see radio.NewLink.
func NewLink(env *Environment, tx, rx *Radio, grid Grid, arr *Array, seed uint64) (*Link, error) {
	return radio.NewLink(env, tx, rx, grid, arr, seed)
}

// NewMIMOLink wires a multi-antenna link; see radio.NewMIMOLink.
func NewMIMOLink(env *Environment, txAnts, rxAnts []Node, grid Grid, arr *Array, seed uint64) (*MIMOLink, error) {
	return radio.NewMIMOLink(env, txAnts, rxAnts, grid, arr, seed)
}

// ThroughputMbps estimates MCS-ladder throughput for a per-subcarrier SNR
// vector on a grid.
func ThroughputMbps(g Grid, snrDB []float64) float64 { return ofdm.ThroughputMbps(g, snrDB) }

// Matrix aliases the dense complex matrix used by the MIMO analysis.
type Matrix = cmat.Matrix

// CondNumberDB returns a channel matrix's condition number in dB.
func CondNumberDB(m *Matrix) float64 { return mimo.CondNumberDB(m) }

// CapacityBpsHz returns the equal-power MIMO Shannon capacity of one
// channel matrix at a linear SNR.
func CapacityBpsHz(m *Matrix, snrLinear float64) float64 { return mimo.CapacityBpsHz(m, snrLinear) }

// ZFSumRateBpsHz returns the zero-forcing sum rate of one channel matrix
// at a linear SNR — the conventional MIMO receiver whose throughput
// collapses on ill-conditioned channels (§1).
func ZFSumRateBpsHz(m *Matrix, snrLinear float64) float64 { return mimo.ZFSumRateBpsHz(m, snrLinear) }

// Control.
type (
	// Objective scores a measured CSI (higher is better).
	Objective = control.Objective
	// Searcher explores the configuration space under a budget.
	Searcher = control.Searcher
	// Result is a search outcome.
	Result = control.Result
	// EvalFunc measures one configuration.
	EvalFunc = control.EvalFunc

	// Built-in objectives.
	MaxMinSNR        = control.MaxMinSNR
	MaxMeanSNR       = control.MaxMeanSNR
	Flatness         = control.Flatness
	Throughput       = control.Throughput
	BoostSubcarrier  = control.BoostSubcarrier
	HalfBandContrast = control.HalfBandContrast

	// Built-in searchers.
	Exhaustive   = control.Exhaustive
	Greedy       = control.Greedy
	HillClimb    = control.HillClimb
	Anneal       = control.Anneal
	Genetic      = control.Genetic
	RandomWalk   = control.Random
	Hierarchical = control.Hierarchical

	// Continuous-phase control (§4.1 "continuously-variable phase
	// shifting hardware").
	ContinuousConfig   = element.ContinuousConfig
	ContinuousEvalFunc = control.ContinuousEvalFunc
	ContinuousResult   = control.ContinuousResult
	SPSA               = control.SPSA
)

// Off is the continuous-phase sentinel terminating an element.
var Off = element.Off

// ErrBudgetExhausted reports a search stopped by its measurement budget.
var ErrBudgetExhausted = control.ErrBudgetExhausted

// CoherenceBudget converts a coherence time and per-measurement cost into
// a measurement budget (§2).
func CoherenceBudget(coherence time.Duration, timing Timing) int {
	return control.CoherenceBudget(coherence, timing)
}

// CoherenceBudgetAtSpeed is CoherenceBudget for an endpoint speed in mph.
func CoherenceBudgetAtSpeed(speedMph, fcHz float64, timing Timing) int {
	return control.CoherenceBudgetAtSpeed(speedMph, fcHz, timing)
}

// CoherenceTimeAtSpeed returns the channel coherence time — the per-loop
// control deadline of §2 — for an endpoint speed in mph at carrier fcHz
// (0 = effectively static, no deadline).
func CoherenceTimeAtSpeed(speedMph, fcHz float64) time.Duration {
	return control.CoherenceTimeAtSpeed(speedMph, fcHz)
}

// System orchestration.
type (
	// Space is a PRESS-instrumented smart space.
	Space = core.Space
	// Goal binds a link to an objective for (joint) optimization.
	Goal = core.Goal
	// OptimizeOptions configures Space.Optimize.
	OptimizeOptions = core.OptimizeOptions
	// Outcome reports an optimization run.
	Outcome = core.Outcome
)

// NewSpace builds a space over an environment and array.
func NewSpace(env *Environment, arr *Array, seed uint64) (*Space, error) {
	return core.NewSpace(env, arr, seed)
}

// Control plane.
type (
	// Agent is the element-side protocol endpoint.
	Agent = controlplane.Agent
	// Controller is the controller-side protocol endpoint.
	Controller = controlplane.Controller
	// Conn is a message-oriented control-plane connection.
	Conn = controlplane.Conn
	// LossyConfig parameterizes the simulated lossy control channel.
	LossyConfig = controlplane.LossyConfig
)

// NewAgent builds an element agent over an array.
func NewAgent(id uint32, arr *Array) *Agent { return controlplane.NewAgent(id, arr) }

// NewController wraps a control-plane connection.
func NewController(conn Conn) *Controller { return controlplane.NewController(conn) }

// MultiController drives several element agents (wall segments) as one
// logical array.
type MultiController = controlplane.MultiController

// NewMultiController composes handshaked controllers into one logical
// array controller.
func NewMultiController(ctrls ...*Controller) (*MultiController, error) {
	return controlplane.NewMultiController(ctrls...)
}

// NewPacketConn adapts a net.PacketConn (UDP) into a control-plane
// connection toward one agent.
func NewPacketConn(pc net.PacketConn, peer net.Addr) Conn {
	return controlplane.NewPacketConn(pc, peer)
}

// SINRdB computes per-subcarrier signal-to-interference-plus-noise for a
// link with co-channel interferers measured at the same receiver.
func SINRdB(signal *CSI, interferers []*CSI) ([]float64, error) {
	return ofdm.SINRdB(signal, interferers)
}

// NewLossyPipe returns both ends of a simulated lossy control channel.
func NewLossyPipe(cfg LossyConfig) (Conn, Conn) { return controlplane.NewLossyPipe(cfg) }

// NewStreamConn adapts a net.Conn (TCP, unix socket, net.Pipe) into a
// control-plane connection.
func NewStreamConn(c net.Conn) Conn { return controlplane.NewStreamConn(c) }

// Telemetry. Every instrumented type in the library (Link, MIMOLink,
// Environment, Controller, Agent) carries an optional *Registry; a nil
// registry is the zero-cost disabled default.
type (
	// Registry is a concurrency-safe registry of counters, gauges, and
	// histograms with JSON and Prometheus-text exposition.
	Registry = obs.Registry
	// Logger is the structured leveled key-value logger.
	Logger = obs.Logger
	// LogLevel is a logger severity threshold.
	LogLevel = obs.Level
	// LogFormat selects the logger's wire format.
	LogFormat = obs.Format
	// Span times one named phase into a registry.
	Span = obs.Span
	// MetricsSnapshot is a point-in-time export of a registry.
	MetricsSnapshot = obs.Snapshot
	// TelemetryCLI bundles the standard -telemetry/-log-level/-cpuprofile
	// flags and their lifecycle for command-line binaries, extended with
	// the channel-health layer (-alert-rules, -health-interval, /alerts,
	// /health.json, /dashboard), the flight-recorder layer (-flight-dir,
	// -flight-segment-mb, /runs), the performance-radar layer
	// (-runtime-metrics-interval, -bench-baselines, /perfz), the
	// cost-attribution layer (-phase-accounting, -profile-interval,
	// /profz), the control-loop deadline tracer (-loop-trace,
	// -loop-deadline, /tracez), the push-export pipeline (-export-url,
	// -export-interval, -export-format, /exportz), and the durable
	// metrics-history store (-tsdb-dir, -tsdb-retention, /query,
	// /query_range, /tsdbz).
	TelemetryCLI = tsdb.CLI
	// LoopTracer assembles per-iteration control-loop span trees, scores
	// them against a coherence deadline, and tail-samples exemplars for
	// /tracez. A nil tracer is the zero-cost disabled default.
	LoopTracer = slo.Tracer
	// LoopTracerConfig parameterizes NewLoopTracer.
	LoopTracerConfig = slo.Config
	// TracedLoop is one control-loop iteration under construction.
	TracedLoop = slo.Loop
	// LoopStats is a traced iteration's verdict: latency, slack, missed.
	LoopStats = slo.Stats
	// ProfCollector accumulates phase-scoped work accounting (wall time,
	// calls, bytes, domain counters per named phase). A nil collector is
	// the zero-cost disabled default.
	ProfCollector = prof.Collector
	// FlightRecorder appends a durable, crash-safe run log (manifest,
	// actuations, CSI/KPI samples, alerts, search decisions) to
	// size-rotated CRC-framed segment files. A nil recorder discards
	// everything at zero cost.
	FlightRecorder = flight.Recorder
	// FlightManifest identifies one recorded run: seeds, parameters,
	// and build provenance.
	FlightManifest = flight.Manifest
	// HealthMonitor computes channel-health KPIs (null depth, MIMO
	// condition number, search regret, control staleness) as bounded time
	// series and evaluates alert rules over them.
	HealthMonitor = health.Monitor
	// HealthRule is one parsed alert rule over a channel-health KPI.
	HealthRule = health.Rule
	// AlertEvent is one alert-rule state transition
	// (inactive→pending→firing→resolved).
	AlertEvent = health.Event
	// TelemetryServer serves a registry live over HTTP: /metrics,
	// /metrics.json, /healthz, /events (SSE), and /debug/pprof/*.
	TelemetryServer = obs.Server
	// TelemetryRecorder periodically samples a registry into a bounded
	// ring for the live /events stream.
	TelemetryRecorder = obs.Recorder
	// TelemetrySample is one sampled snapshot of counters and gauges.
	TelemetrySample = obs.Sample
	// TraceLog collects completed spans for Chrome trace-event export
	// (viewable at ui.perfetto.dev).
	TraceLog = obs.TraceLog
	// TraceSpan is one completed span in a TraceLog.
	TraceSpan = obs.TraceSpan
	// TelemetryScope bundles one session's registry, logger, health
	// monitor, flight recorder, and phase collector behind a single
	// nil-safe handle; scoped metrics roll up into the parent registry.
	TelemetryScope = scope.Scope
	// TelemetryScopeSet is a bounded process-level registry of live
	// session scopes with LRU eviction and /sessions HTTP routes.
	TelemetryScopeSet = scope.Set
	// TelemetryScopeConfig parameterizes NewTelemetryScope.
	TelemetryScopeConfig = scope.Config
)

// Logger severity levels and formats.
const (
	LevelDebug = obs.LevelDebug
	LevelInfo  = obs.LevelInfo
	LevelWarn  = obs.LevelWarn
	LevelError = obs.LevelError
	LevelOff   = obs.LevelOff

	Logfmt     = obs.Logfmt
	JSONFormat = obs.JSONFormat
)

// LatencyBuckets are histogram bounds suited to sub-second latencies.
var LatencyBuckets = obs.LatencyBuckets

// NewRegistry returns an empty live metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewLogger returns a structured logger writing records at or above
// level to w.
func NewLogger(w io.Writer, level LogLevel, format LogFormat) *Logger {
	return obs.NewLogger(w, level, format)
}

// StartSpan starts a named timing span; End() records its duration in
// the registry. A nil registry yields an inert span.
func StartSpan(r *Registry, name string) Span { return obs.StartSpan(r, name) }

// NewTelemetryServer builds a live telemetry server over reg; rec may be
// nil to disable the /events stream. Call Start(addr), then Close.
func NewTelemetryServer(reg *Registry, rec *TelemetryRecorder) *TelemetryServer {
	return obs.NewServer(reg, rec)
}

// NewTelemetryRecorder samples reg every interval into a ring of the
// given capacity (zero values pick sensible defaults).
func NewTelemetryRecorder(reg *Registry, interval time.Duration, capacity int) *TelemetryRecorder {
	return obs.NewRecorder(reg, interval, capacity)
}

// NewTraceLog returns an empty span collector; attach it with
// Registry.SetTraceLog and export with WriteJSON.
func NewTraceLog() *TraceLog { return obs.NewTraceLog() }

// NewTraceID returns a process-unique nonzero trace ID for correlating
// controller and agent spans.
func NewTraceID() uint64 { return obs.NewTraceID() }

// InstrumentSearcher wraps a searcher so every run records evaluation
// counts, best-objective trajectory, and wall-time into reg/log.
func InstrumentSearcher(s Searcher, reg *Registry, log *Logger) Searcher {
	return control.Instrument(s, reg, log)
}

// InstrumentSearcherHealth is InstrumentSearcher plus a channel-health
// monitor fed with the best objective after every improving evaluation.
func InstrumentSearcherHealth(s Searcher, reg *Registry, log *Logger, h *HealthMonitor) Searcher {
	return control.InstrumentHealth(s, reg, log, h)
}

// InstrumentSearcherFlight is InstrumentSearcherHealth plus a flight
// recorder that persists every evaluation as a durable search-decision
// record for post-hoc audit and replay.
func InstrumentSearcherFlight(s Searcher, reg *Registry, log *Logger, h *HealthMonitor, rec *FlightRecorder) Searcher {
	return control.InstrumentFlight(s, reg, log, h, rec)
}

// InstrumentSearcherProf is InstrumentSearcherFlight plus a
// work-accounting collector that attributes every evaluation's cost to
// the search_eval phase for `pressctl hotspots` reports.
func InstrumentSearcherProf(s Searcher, reg *Registry, log *Logger, h *HealthMonitor, rec *FlightRecorder, pc *ProfCollector) Searcher {
	return control.InstrumentProf(s, reg, log, h, rec, pc)
}

// InstrumentSearcherScope wraps a searcher with every sink a telemetry
// scope carries — the session-oriented form of the InstrumentSearcher*
// chain. A nil (or fully disabled) scope returns s unchanged.
func InstrumentSearcherScope(s Searcher, sc *TelemetryScope) Searcher {
	return control.InstrumentScope(s, sc)
}

// NewLoopTracer builds a control-loop deadline tracer recording into
// reg (nil = identity/reservoir bookkeeping only): per-iteration span
// trees, coherence-deadline verdicts, slack histograms, and the
// tail-sampling reservoir behind /tracez. A nil *LoopTracer is the
// zero-cost disabled default every call site tolerates.
func NewLoopTracer(reg *Registry, cfg LoopTracerConfig) *LoopTracer {
	return slo.NewTracer(reg, cfg)
}

// NewTelemetryScope creates an owned session scope: a child registry
// rolling up into parent plus whichever components cfg enables. Close
// releases them. See internal/obs/scope for the session model.
func NewTelemetryScope(id string, parent *Registry, cfg TelemetryScopeConfig) (*TelemetryScope, error) {
	return scope.New(id, parent, cfg)
}

// NewTelemetryScopeSet builds a bounded registry of session scopes
// parented on reg; maxScopes <= 0 picks the default cardinality budget.
func NewTelemetryScopeSet(reg *Registry, maxScopes int) *TelemetryScopeSet {
	return scope.NewSet(reg, maxScopes)
}

// ScopeFromTelemetry adopts a flag-built TelemetryCLI stack as one
// session scope — how a one-shot binary becomes a single session
// without changing its flags or teardown (Scope.Close leaves adopted
// components to the CLI's Finish).
func ScopeFromTelemetry(id string, t *TelemetryCLI) *TelemetryScope {
	return scope.FromTelemetry(id, t)
}

// NewFlightManifest starts a run manifest stamped with the current time
// and build provenance; see flight.NewManifest.
func NewFlightManifest(binary, scenario string, seed uint64) *FlightManifest {
	return flight.NewManifest(binary, scenario, seed)
}

// ParseAlertRules parses a ';'-separated -alert-rules list ("default"
// expands to the built-in set).
func ParseAlertRules(s string) ([]HealthRule, error) { return health.ParseRules(s) }

// NewHealthMonitor builds a channel-health monitor sampling KPIs every
// interval into series of the given capacity (zero values pick
// defaults); reg may be nil.
func NewHealthMonitor(reg *Registry, rules []HealthRule, interval time.Duration, capacity int) *HealthMonitor {
	return health.NewMonitor(reg, rules, interval, capacity)
}
