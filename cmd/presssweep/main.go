// Command presssweep runs parameter sweeps over the PRESS design space
// that complement the paper-figure harnesses in pressim:
//
//	presssweep convergence   # best-so-far score vs measurements, per searcher
//	presssweep budget        # achievable gain vs endpoint speed (coherence budget)
//	presssweep density       # gain vs element count × antenna type
//
// Output is CSV on stdout, ready for plotting.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"time"

	"press"
	"press/internal/control"
	"press/internal/experiments"
	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/scope"
	"press/internal/obs/tsdb"
	"press/internal/radio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "presssweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: presssweep convergence|budget|density [flags]")
	}
	switch args[0] {
	case "convergence":
		return runConvergence(args[1:])
	case "budget":
		return runBudget(args[1:])
	case "density":
		return runDensity(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// startTelemetry brings up the parsed telemetry flags and installs the
// ambient experiments scope. The returned finish func tears both down
// and emits the snapshot ("-" goes to stdout, after the CSV).
func startTelemetry(tele *tsdb.CLI, scenario string, seed uint64) (finish func() error, err error) {
	if err := tele.Start(os.Stderr); err != nil {
		return nil, err
	}
	// The sweep scenario names the telemetry session on exported batches.
	experiments.SetScope(scope.FromTelemetry(scenario, tele))
	if rec := tele.Flight(); rec != nil {
		rec.RecordManifest(flight.NewManifest("presssweep", scenario, seed))
	}
	return func() error {
		experiments.SetScope(nil)
		return tele.Finish(os.Stdout)
	}, nil
}

// buildLink constructs the calibrated NLoS scenario with n elements.
func buildLink(seed uint64, n int) (*radio.Link, error) {
	scen := experiments.DefaultSISO(seed)
	scen.NumElements = n
	return scen.Build()
}

func runConvergence(args []string) error {
	fs := flag.NewFlagSet("convergence", flag.ContinueOnError)
	seed := fs.Uint64("seed", 442, "scenario seed")
	elements := fs.Int("elements", 8, "array size (space 4^n)")
	budget := fs.Int("budget", 300, "measurement budget per searcher")
	var tele tsdb.CLI
	tele.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := startTelemetry(&tele, "convergence", *seed)
	if err != nil {
		return err
	}
	sp := obs.StartSpan(tele.Registry(), "sweep/convergence")

	searchers := []control.Searcher{
		control.Random{Rng: rand.New(rand.NewPCG(*seed, 1)), Samples: *budget},
		control.Greedy{Rng: rand.New(rand.NewPCG(*seed, 2)), Restarts: 16},
		control.HillClimb{Rng: rand.New(rand.NewPCG(*seed, 3)), Restarts: 8, StepsPerRestart: *budget},
		control.Anneal{Rng: rand.New(rand.NewPCG(*seed, 4)), Steps: *budget},
		control.Genetic{Rng: rand.New(rand.NewPCG(*seed, 5)), Pop: 16, Generations: *budget / 16},
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{"algorithm", "evaluation", "best_so_far_db"}); err != nil {
		return err
	}
	for _, s := range searchers {
		link, err := buildLink(*seed, *elements)
		if err != nil {
			return err
		}
		ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}}
		res, err := control.Instrument(s, tele.Registry(), tele.Logger()).
			Search(link.Array, ev.Eval, *budget)
		if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
			return err
		}
		for i, best := range res.Trace {
			if err := w.Write([]string{s.Name(), strconv.Itoa(i + 1),
				strconv.FormatFloat(best, 'f', 3, 64)}); err != nil {
				return err
			}
		}
	}
	sp.End()
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return finish()
}

func runBudget(args []string) error {
	fs := flag.NewFlagSet("budget", flag.ContinueOnError)
	seed := fs.Uint64("seed", 442, "scenario seed")
	perMeas := fs.Duration("per-measurement", 2*time.Millisecond, "measurement cost")
	var tele tsdb.CLI
	tele.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := startTelemetry(&tele, "budget", *seed)
	if err != nil {
		return err
	}
	sp := obs.StartSpan(tele.Registry(), "sweep/budget")
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{"speed_mph", "budget", "baseline_db", "best_db", "gain_db"}); err != nil {
		return err
	}
	timing := radio.Timing{PerMeasurement: *perMeas}
	for _, mph := range []float64{0.25, 0.5, 1, 2, 4, 6} {
		link, err := buildLink(*seed, 3)
		if err != nil {
			return err
		}
		budget := press.CoherenceBudgetAtSpeed(mph, press.DefaultCarrierHz, timing)
		ev := &control.LinkEvaluator{Link: link, Objective: control.MaxMinSNR{}, Timing: timing}
		base, ok := link.Array.AllTerminated()
		if !ok {
			base = make([]int, link.Array.N())
		}
		baseline, err := ev.Eval(base)
		if err != nil {
			return err
		}
		res, err := control.Instrument(
			control.Greedy{Rng: rand.New(rand.NewPCG(*seed, 9)), Restarts: 4},
			tele.Registry(), tele.Logger()).
			Search(link.Array, ev.Eval, budget)
		if err != nil && !errors.Is(err, control.ErrBudgetExhausted) {
			return err
		}
		if err := w.Write([]string{
			strconv.FormatFloat(mph, 'f', 2, 64),
			strconv.Itoa(budget),
			strconv.FormatFloat(baseline, 'f', 2, 64),
			strconv.FormatFloat(res.BestScore, 'f', 2, 64),
			strconv.FormatFloat(res.BestScore-baseline, 'f', 2, 64),
		}); err != nil {
			return err
		}
	}
	sp.End()
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return finish()
}

func runDensity(args []string) error {
	fs := flag.NewFlagSet("density", flag.ContinueOnError)
	seed := fs.Uint64("seed", 442, "scenario seed")
	maxN := fs.Int("max-elements", 6, "largest array size")
	var tele tsdb.CLI
	tele.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := startTelemetry(&tele, "density", *seed)
	if err != nil {
		return err
	}
	sp := obs.StartSpan(tele.Registry(), "sweep/density")
	res, err := experiments.RunElementAblation(*seed, countsUpTo(*maxN))
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{"elements", "pattern", "baseline_db", "best_db", "gain_db"}); err != nil {
		return err
	}
	for _, row := range res.Rows {
		if err := w.Write([]string{
			strconv.Itoa(row.Elements), row.Pattern,
			strconv.FormatFloat(row.BaselineDB, 'f', 2, 64),
			strconv.FormatFloat(row.BestDB, 'f', 2, 64),
			strconv.FormatFloat(row.GainDB, 'f', 2, 64),
		}); err != nil {
			return err
		}
	}
	sp.End()
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return finish()
}

func countsUpTo(n int) []int {
	out := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, i)
	}
	return out
}
