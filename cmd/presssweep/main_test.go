package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestCountsUpTo(t *testing.T) {
	got := countsUpTo(4)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d", i, got[i])
		}
	}
	if len(countsUpTo(0)) != 0 {
		t.Error("countsUpTo(0) should be empty")
	}
}

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-arg invocation accepted")
	}
	if err := run([]string{"warpdrive"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestBuildLink(t *testing.T) {
	link, err := buildLink(442, 3)
	if err != nil {
		t.Fatal(err)
	}
	if link.Array.N() != 3 {
		t.Errorf("array size %d", link.Array.N())
	}
	if _, err := buildLink(442, 0); err == nil {
		t.Error("zero elements accepted")
	}
}

// TestSweepTraceExport runs a tiny real sweep with -trace and validates
// the exported Chrome trace against the schema Perfetto requires: a JSON
// array whose events all carry name/ph/ts/pid/tid.
func TestSweepTraceExport(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "sweep.json")

	// The sweep writes its CSV to os.Stdout; swallow it through a pipe so
	// the test output stays clean.
	savedStdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		_, _ = io.Copy(io.Discard, r)
	}()
	runErr := run([]string{"convergence",
		"-elements", "3", "-budget", "20", "-trace", tracePath})
	w.Close()
	os.Stdout = savedStdout
	<-drained
	if runErr != nil {
		t.Fatal(runErr)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	sawComplete := false
	for i, e := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, e)
			}
		}
		if e["ph"] == "X" {
			sawComplete = true
			if _, ok := e["dur"]; !ok {
				t.Errorf("complete event %d missing dur", i)
			}
		}
	}
	if !sawComplete {
		t.Error("no complete (ph=X) events in trace")
	}
}
