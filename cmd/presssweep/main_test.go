package main

import "testing"

func TestCountsUpTo(t *testing.T) {
	got := countsUpTo(4)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d", i, got[i])
		}
	}
	if len(countsUpTo(0)) != 0 {
		t.Error("countsUpTo(0) should be empty")
	}
}

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-arg invocation accepted")
	}
	if err := run([]string{"warpdrive"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestBuildLink(t *testing.T) {
	link, err := buildLink(442, 3)
	if err != nil {
		t.Fatal(err)
	}
	if link.Array.N() != 3 {
		t.Errorf("array size %d", link.Array.N())
	}
	if _, err := buildLink(442, 0); err == nil {
		t.Error("zero elements accepted")
	}
}
