package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runQuick invokes the CLI entry point with reduced workloads.
func runQuick(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestRunLoS(t *testing.T) {
	out := runQuick(t, "-exp", "los")
	if !strings.Contains(out, "Passive elements") || !strings.Contains(out, "paper: < 2 dB") {
		t.Errorf("los output missing headline:\n%s", out)
	}
}

func TestRunFig5Reduced(t *testing.T) {
	out := runQuick(t, "-exp", "fig5", "-trials", "2")
	if !strings.Contains(out, "CCDF of null movement") {
		t.Errorf("fig5 output wrong:\n%s", out)
	}
	if !strings.Contains(out, "trial1") {
		t.Errorf("fig5 missing per-trial columns:\n%s", out)
	}
}

func TestRunFig8ReducedWithCSV(t *testing.T) {
	dir := t.TempDir()
	out := runQuick(t, "-exp", "fig8", "-snapshots", "5", "-reps", "1", "-csv", dir)
	if !strings.Contains(out, "condition number") {
		t.Errorf("fig8 output wrong:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,config,x_cond_db,cdf") {
		t.Errorf("fig8.csv header wrong: %q", string(data[:50]))
	}
}

func TestRunCoherence(t *testing.T) {
	out := runQuick(t, "-exp", "coherence")
	if !strings.Contains(out, "prototype budget") || !strings.Contains(out, "4.992s") {
		t.Errorf("coherence output wrong:\n%s", out)
	}
}

func TestRunStaleness(t *testing.T) {
	out := runQuick(t, "-exp", "staleness")
	if !strings.Contains(out, "regret dB") {
		t.Errorf("staleness output wrong:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out := runQuick(t, "-exp", "los,coherence")
	if !strings.Contains(out, "Passive elements") || !strings.Contains(out, "prototype budget") {
		t.Errorf("combined run incomplete:\n%s", out)
	}
	// Separator between experiments.
	if !strings.Contains(out, "====") {
		t.Error("missing separator")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-trials", "zebra"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunControlPlane(t *testing.T) {
	out := runQuick(t, "-exp", "controlplane")
	if !strings.Contains(out, "ultrasound") || !strings.Contains(out, "gain@walk") {
		t.Errorf("controlplane output wrong:\n%s", out)
	}
}

func TestRunRecordReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.json")
	out := runQuick(t, "-exp", "record", "-record", path, "-trials", "2")
	if !strings.Contains(out, "recorded 2 trials") {
		t.Errorf("record output wrong:\n%s", out)
	}
	out = runQuick(t, "-exp", "replay", "-record", path)
	if !strings.Contains(out, "max null movement") {
		t.Errorf("replay output wrong:\n%s", out)
	}
}

func TestRecordNeedsPath(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "record"}, &buf); err == nil {
		t.Error("record without -record accepted")
	}
	if err := run([]string{"-exp", "replay"}, &buf); err == nil {
		t.Error("replay without -record accepted")
	}
}

// TestTelemetrySnapshot: -telemetry - must append a valid JSON snapshot
// carrying the headline series (search evaluations, channel-solve
// histogram) and per-experiment spans after the experiment output.
func TestTelemetrySnapshot(t *testing.T) {
	out := runQuick(t, "-exp", "los", "-telemetry", "-")
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON snapshot in output:\n%s", out)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
		Spans      map[string]map[string]any `json:"spans"`
	}
	if err := json.Unmarshal([]byte(out[i:]), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, out[i:])
	}
	if _, ok := snap.Counters["search_evaluations_total"]; !ok {
		t.Errorf("snapshot missing search_evaluations_total: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["radio_channel_solve_seconds"]; !ok {
		t.Errorf("snapshot missing radio_channel_solve_seconds: %v", snap.Histograms)
	}
	if _, ok := snap.Spans["exp/los"]; !ok {
		t.Errorf("snapshot missing exp/los span: %v", snap.Spans)
	}
	if snap.Counters["radio_csi_measurements_total"] == 0 {
		t.Error("los ran measurements but the counter is zero")
	}
}

// TestTelemetryFileProm: a file destination in Prometheus format.
func TestTelemetryFileProm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	runQuick(t, "-exp", "los", "-telemetry", path, "-telemetry-format", "prom")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE radio_csi_measurements_total counter",
		"radio_channel_solve_seconds_bucket{le=\"+Inf\"}",
		"exp_los_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom output missing %q:\n%s", want, text)
		}
	}
}
