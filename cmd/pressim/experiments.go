package main

import (
	"fmt"
	"io"
	"os"

	"press/internal/experiments"
)

// runOne dispatches one experiment by name.
func runOne(name string, opt options, out io.Writer) error {
	switch name {
	case "los":
		o := experiments.DefaultLoS()
		if opt.seed != 0 {
			o.Seed = opt.seed
		}
		res, err := experiments.RunLoS(o)
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "fig4":
		o := experiments.DefaultFig4()
		o.Trials = opt.trials
		o.Placements = opt.placements
		if opt.seed != 0 {
			o.BaseSeed = opt.seed
		}
		res, err := experiments.RunFig4(o)
		if err != nil {
			return err
		}
		res.Print(out)
		return writeCSV(opt, "fig4", res.WriteCSV)

	case "fig5":
		o := experiments.DefaultFig5()
		o.Trials = opt.trials
		if opt.seed != 0 {
			o.Seed = opt.seed
		}
		res, err := experiments.RunFig5(o)
		if err != nil {
			return err
		}
		res.Print(out)
		return writeCSV(opt, "fig5", res.WriteCSV)

	case "fig6":
		o := experiments.DefaultFig6()
		o.Trials = opt.trials
		if opt.seed != 0 {
			o.Seed = opt.seed
		}
		res, err := experiments.RunFig6(o)
		if err != nil {
			return err
		}
		res.Print(out)
		return writeCSV(opt, "fig6", res.WriteCSV)

	case "fig7":
		o := experiments.DefaultFig7()
		if opt.seed != 0 {
			o.Seed = opt.seed
		}
		res, err := experiments.RunFig7(o)
		if err != nil {
			return err
		}
		res.Print(out)
		return writeCSV(opt, "fig7", res.WriteCSV)

	case "fig8":
		o := experiments.DefaultFig8()
		o.Snapshots = opt.snapshots
		o.Repetitions = opt.reps
		if opt.seed != 0 {
			o.Seed = opt.seed
		}
		res, err := experiments.RunFig8(o)
		if err != nil {
			return err
		}
		res.Print(out)
		return writeCSV(opt, "fig8", res.WriteCSV)

	case "coherence":
		experiments.RunCoherence().Print(out)
		return nil

	case "demo":
		o := experiments.DefaultDemo()
		if opt.seed != 0 {
			o.Seed = opt.seed
		}
		o.Loops = opt.loops
		o.SpeedMph = opt.speed
		o.SlowPhase = opt.slowPhase
		o.Budget = opt.budget
		res, err := experiments.RunDemo(o)
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "controlplane":
		seed := opt.seed
		if seed == 0 {
			seed = 442
		}
		res, err := experiments.RunControlPlaneComparison(seed)
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "staleness":
		seed := opt.seed
		if seed == 0 {
			seed = 442
		}
		res, err := experiments.RunStaleness(seed, nil)
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "ablation":
		seed := opt.seed
		if seed == 0 {
			seed = 442
		}
		a1, err := experiments.RunPhaseAblation(seed, nil)
		if err != nil {
			return err
		}
		a1.Print(out)
		fmt.Fprintln(out)
		a2, err := experiments.RunElementAblation(seed, nil)
		if err != nil {
			return err
		}
		a2.Print(out)
		fmt.Fprintln(out)
		a3, err := experiments.RunSearchAblation(seed, opt.budget)
		if err != nil {
			return err
		}
		a3.Print(out)
		fmt.Fprintln(out)
		a4, err := experiments.RunContinuousAblation(seed, opt.budget)
		if err != nil {
			return err
		}
		a4.Print(out)
		return nil

	case "scaling":
		seed := opt.seed
		if seed == 0 {
			seed = 822
		}
		res, err := experiments.RunMIMOScaling(seed, nil, opt.snapshots)
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "arrayscale":
		seed := opt.seed
		if seed == 0 {
			seed = 442
		}
		res, err := experiments.RunArrayScaling(seed, nil, opt.budget*2)
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "faults":
		seed := opt.seed
		if seed == 0 {
			seed = 442
		}
		res, err := experiments.RunFaultTolerance(seed)
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "concurrent":
		o := experiments.DefaultConcurrent()
		o.Seed = opt.seed
		o.Sessions = opt.sessions
		o.Budget = opt.budget
		o.FlightRoot = opt.tele.FlightDir
		res, err := experiments.RunConcurrent(o)
		if res != nil {
			res.Print(out)
		}
		return err

	case "session":
		seed := opt.seed
		if seed == 0 {
			seed = 442
		}
		res, err := experiments.RunSession("session", seed, opt.budget, experiments.CurrentScope())
		if err != nil {
			return err
		}
		res.Print(out)
		return nil

	case "record":
		if opt.recordPath == "" {
			return fmt.Errorf("record needs -record FILE")
		}
		seed := opt.seed
		if seed == 0 {
			seed = 442
		}
		rec, err := experiments.RecordSweepRecord(seed, opt.trials)
		if err != nil {
			return err
		}
		f, err := os.Create(opt.recordPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.Save(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %d trials of the placement sweep to %s\n", opt.trials, opt.recordPath)
		if err := writeCSV(opt, "record", rec.WriteCSV); err != nil {
			return err
		}
		return f.Close()

	case "replay":
		if opt.recordPath == "" {
			return fmt.Errorf("replay needs -record FILE")
		}
		f, err := os.Open(opt.recordPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return experiments.ReplayAnalysis(f, out)

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
