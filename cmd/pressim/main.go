// Command pressim regenerates every table and figure of the paper's
// exploratory study (§3) plus the §2/§4 analyses, printing the same
// rows/series the paper reports and optionally writing raw CSV data.
//
// Usage:
//
//	pressim -exp all
//	pressim -exp fig4 -trials 10 -placements 8
//	pressim -exp fig8 -csv out/
//	pressim -exp ablation
//
// Experiments: los, fig4, fig5, fig6, fig7, fig8, coherence, ablation,
// concurrent (multi-room sessions with per-room telemetry scopes), all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"press/internal/experiments"
	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/scope"
	"press/internal/obs/tsdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pressim:", err)
		os.Exit(1)
	}
}

type options struct {
	exp        string
	trials     int
	placements int
	sessions   int
	seed       uint64
	snapshots  int
	reps       int
	budget     int
	loops      int
	speed      float64
	slowPhase  time.Duration
	csvDir     string
	recordPath string
	tele       tsdb.CLI
}

// spec captures the invocation as a replayable RunSpec — the exact
// params a flight-log manifest records.
func (o *options) spec() experiments.RunSpec {
	return experiments.RunSpec{
		Exp: o.exp, Seed: o.seed, Trials: o.trials, Placements: o.placements,
		Snapshots: o.snapshots, Reps: o.reps, Budget: o.budget,
		Loops: o.loops, Speed: o.speed, SlowPhase: o.slowPhase,
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pressim", flag.ContinueOnError)
	var opt options
	fs.StringVar(&opt.exp, "exp", "all", "experiment: los|fig4|fig5|fig6|fig7|fig8|coherence|staleness|ablation|concurrent|demo|all")
	fs.IntVar(&opt.trials, "trials", 10, "sweep repetitions for fig4/fig5/fig6")
	fs.IntVar(&opt.placements, "placements", 8, "random element placements for fig4")
	fs.Uint64Var(&opt.seed, "seed", 0, "seed override (0 = the calibrated defaults)")
	fs.IntVar(&opt.snapshots, "snapshots", 50, "channel measurements averaged per config for fig8")
	fs.IntVar(&opt.reps, "reps", 5, "sweep repetitions for fig8")
	fs.IntVar(&opt.budget, "budget", 200, "measurement budget for the search ablation")
	fs.IntVar(&opt.sessions, "sessions", 12, "rooms driven by -exp concurrent (each gets its own telemetry scope)")
	fs.IntVar(&opt.loops, "loops", 20, "control-loop iterations for -exp demo")
	fs.Float64Var(&opt.speed, "speed", 6, "endpoint speed in mph for -exp demo (sets the loop deadline; 0 = static)")
	fs.DurationVar(&opt.slowPhase, "slow-phase", 0, "stall injected into every demo loop's sense phase (forces deadline misses)")
	fs.StringVar(&opt.csvDir, "csv", "", "directory to write raw CSV series into (created if missing)")
	fs.StringVar(&opt.recordPath, "record", "", "JSON sweep-record path for the record/replay experiments")
	opt.tele.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if opt.csvDir != "" {
		if err := os.MkdirAll(opt.csvDir, 0o755); err != nil {
			return err
		}
	}
	if err := opt.tele.Start(os.Stderr); err != nil {
		return err
	}
	// The whole invocation is one telemetry session: adopt the flag-built
	// process stack as the ambient scope (teardown stays with tele.Finish).
	// The experiment name doubles as the session label on exported batches
	// ("" for multi-experiment runs: those stay process-labeled).
	sessionID := ""
	if len(strings.Split(opt.exp, ",")) == 1 && opt.exp != "all" {
		sessionID = opt.exp
	}
	experiments.SetScope(scope.FromTelemetry(sessionID, &opt.tele))
	defer experiments.SetScope(nil)
	if rec := opt.tele.Flight(); rec != nil {
		man := flight.NewManifest("pressim", opt.exp, opt.seed)
		man.SetParams(opt.spec().Params())
		rec.RecordManifest(man)
	}
	if reg := opt.tele.Registry(); reg != nil {
		// Pre-register the headline series so the snapshot always carries
		// them, even for experiments that never search or solve a channel.
		reg.Counter("search_evaluations_total")
		reg.Histogram("radio_channel_solve_seconds", obs.LatencyBuckets)
	}

	exps := strings.Split(opt.exp, ",")
	if opt.exp == "all" {
		exps = []string{"los", "fig4", "fig5", "fig6", "fig7", "fig8", "coherence", "controlplane", "staleness", "scaling", "arrayscale", "faults", "ablation"}
	}
	for i, e := range exps {
		if i > 0 {
			fmt.Fprintln(out, "\n"+strings.Repeat("=", 72)+"\n")
		}
		name := strings.TrimSpace(e)
		sp := obs.StartSpan(opt.tele.Registry(), "exp/"+name)
		err := runOne(name, opt, out)
		sp.End()
		if err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
	}
	return opt.tele.Finish(out)
}

// writeCSV saves a figure's raw series when -csv was given.
func writeCSV(opt options, name string, fn func(io.Writer) error) error {
	if opt.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(opt.csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fn(f); err != nil {
		return err
	}
	return f.Close()
}
