package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"press/internal/obs/tsdb"
)

// runQuery answers instant and range queries against a metrics-history
// directory written by a -tsdb-dir run — the offline read path: the
// store is opened read-only, so it works on a live run's directory and
// after the writing process is gone alike.
//
//	pressctl query -tsdb-dir d 'rate(control_actuations_total[1m])'
//	pressctl query -tsdb-dir d -last 10m -step 30s 'health_min_snr_db'
//	pressctl query -tsdb-dir d -session room-3 -o ndjson 'radio_csi_updates_total'
//
// Without -at/-start/-end the evaluation time defaults to the store's
// data extent (not the wall clock), so querying an old run just works.
func runQuery(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dir := fs.String("tsdb-dir", "", "metrics-history directory (as written by -tsdb-dir)")
	session := fs.String("session", "", "restrict to one session (overrides any {session=...} in the expression)")
	at := fs.String("at", "", "instant evaluation time (unix seconds or RFC3339; default: newest stored sample)")
	start := fs.String("start", "", "range start (unix seconds or RFC3339; implies a range query)")
	end := fs.String("end", "", "range end (unix seconds or RFC3339; implies a range query)")
	last := fs.Duration("last", 0, "range over the trailing window ending at -end (implies a range query)")
	step := fs.Duration("step", 10*time.Second, "range query resolution")
	output := fs.String("o", "table", "output format: table or ndjson")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("query: -tsdb-dir is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: exactly one query expression expected, got %d", fs.NArg())
	}
	if *output != "table" && *output != "ndjson" {
		return fmt.Errorf("query: -o must be table or ndjson, got %q", *output)
	}
	expr := fs.Arg(0)
	if *session != "" {
		rewritten, err := tsdb.WithSession(expr, *session)
		if err != nil {
			return err
		}
		expr = rewritten
	}

	s, err := tsdb.Open(tsdb.Options{Dir: *dir, ReadOnly: true})
	if err != nil {
		return err
	}
	defer s.Close()
	minMs, maxMs := s.Extent()

	if *start == "" && *end == "" && *last == 0 {
		t := time.UnixMilli(maxMs)
		if *at != "" {
			if t, err = parseQueryTime(*at); err != nil {
				return err
			}
		} else if maxMs == 0 {
			t = time.Now()
		}
		samples, err := s.Instant(expr, t)
		if err != nil {
			return err
		}
		return writeInstant(w, *output, samples)
	}

	// Range mode. Missing endpoints default to the stored data's extent
	// so `-last 10m` or a bare `-start` alone both do the obvious thing.
	endT := time.UnixMilli(maxMs)
	if *end != "" {
		if endT, err = parseQueryTime(*end); err != nil {
			return err
		}
	} else if maxMs == 0 {
		endT = time.Now()
	}
	var startT time.Time
	switch {
	case *start != "":
		if startT, err = parseQueryTime(*start); err != nil {
			return err
		}
	case *last > 0:
		startT = endT.Add(-*last)
	default:
		startT = time.UnixMilli(minMs)
	}
	series, err := s.Range(expr, startT, endT, *step)
	if err != nil {
		return err
	}
	return writeRange(w, *output, series)
}

// parseQueryTime accepts unix seconds (fractional ok) or RFC3339.
func parseQueryTime(s string) (time.Time, error) {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return time.UnixMilli(int64(f * 1000)), nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("query: bad time %q (want unix seconds or RFC3339)", s)
}

func seriesLabel(l tsdb.Labels) string {
	if l.Session != "" {
		return fmt.Sprintf("%s{session=%q}", l.Name, l.Session)
	}
	return l.Name
}

func writeInstant(w io.Writer, format string, samples []tsdb.Sample) error {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Labels.Name != samples[j].Labels.Name {
			return samples[i].Labels.Name < samples[j].Labels.Name
		}
		return samples[i].Labels.Session < samples[j].Labels.Session
	})
	if format == "ndjson" {
		enc := json.NewEncoder(w)
		for _, smp := range samples {
			rec := struct {
				Metric tsdb.Labels `json:"metric"`
				UnixMs int64       `json:"unix_ms"`
				Value  float64     `json:"value"`
			}{smp.Labels, smp.T, smp.V}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if len(samples) == 0 {
		fmt.Fprintln(w, "no data")
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SERIES\tTIME\tVALUE")
	for _, smp := range samples {
		fmt.Fprintf(tw, "%s\t%s\t%g\n", seriesLabel(smp.Labels),
			time.UnixMilli(smp.T).Format(time.RFC3339), smp.V)
	}
	return tw.Flush()
}

func writeRange(w io.Writer, format string, series []tsdb.Series) error {
	sort.Slice(series, func(i, j int) bool {
		if series[i].Labels.Name != series[j].Labels.Name {
			return series[i].Labels.Name < series[j].Labels.Name
		}
		return series[i].Labels.Session < series[j].Labels.Session
	})
	if format == "ndjson" {
		enc := json.NewEncoder(w)
		for _, sr := range series {
			for _, p := range sr.Points {
				rec := struct {
					Metric tsdb.Labels `json:"metric"`
					UnixMs int64       `json:"unix_ms"`
					Value  float64     `json:"value"`
				}{sr.Labels, p.T, p.V}
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if len(series) == 0 {
		fmt.Fprintln(w, "no data")
		return nil
	}
	for i, sr := range series {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s (%d points)\n", seriesLabel(sr.Labels), len(sr.Points))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, p := range sr.Points {
			fmt.Fprintf(tw, "  %s\t%g\n", time.UnixMilli(p.T).Format(time.RFC3339), p.V)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
