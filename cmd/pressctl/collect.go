package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"press/internal/obs/export"
)

// runCollect is the dev-loop telemetry receiver: the HTTP endpoint a
// `-export-url` points at. It accepts POSTed batch payloads (NDJSON or
// JSON array) on any path, prints one line per batch, accumulates
// per-session counter totals, serves them back at GET /totals.json, and
// prints a reconciliation summary on shutdown — enough to eyeball a
// live run or assert end-to-end delivery in CI without a real
// collector stack.
func runCollect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7020", "HTTP listen address for pushed batches")
	outPath := fs.String("out", "", "also append every received payload to this NDJSON file")
	totalsPath := fs.String("totals-file", "", "persist per-session totals to this JSON file on shutdown (reloaded on start, so totals survive collector restarts)")
	quiet := fs.Bool("quiet", false, "suppress the per-batch lines (summary and /totals.json only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	col := newCollector(out, *quiet)
	if *totalsPath != "" {
		if err := col.loadTotals(*totalsPath); err != nil {
			return err
		}
	}
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		col.tee = f
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "collecting telemetry batches on http://%s (POST any path; GET /totals.json)\n", l.Addr())
	srv := &http.Server{Handler: col}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shctx)
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
	}
	col.summarize(out)
	if *totalsPath != "" {
		return col.saveTotals(*totalsPath)
	}
	return nil
}

// collector accumulates pushed telemetry batches. ServeHTTP makes it
// mountable under httptest in the e2e tests.
type collector struct {
	out   io.Writer
	quiet bool
	tee   io.Writer // optional raw payload copy

	mu       sync.Mutex
	payloads int64
	batches  int64
	rejected int64
	sessions map[string]*sessionTotals
}

// sessionTotals is one session's accumulated state: summed counter and
// histogram deltas (which must reconcile with the producer's registry
// totals) plus the latest gauges and batch bookkeeping.
type sessionTotals struct {
	Batches    int64                `json:"batches"`
	LastSeq    uint64               `json:"last_seq"`
	LastUnixMs int64                `json:"last_unix_ms"`
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]histTotal `json:"histograms,omitempty"`
	Spans      map[string]spanTotal `json:"spans,omitempty"`
}

type histTotal struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

type spanTotal struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}

func newCollector(out io.Writer, quiet bool) *collector {
	return &collector{out: out, quiet: quiet, sessions: map[string]*sessionTotals{}}
}

// ServeHTTP accepts POSTed batch payloads on any path and serves the
// accumulated per-session totals at GET /totals.json.
func (c *collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/totals.json":
		c.serveTotals(w)
	case r.Method == http.MethodPost:
		c.ingest(w, r)
	default:
		http.Error(w, "pressctl collect: POST batches to any path, GET /totals.json", http.StatusNotFound)
	}
}

func (c *collector) ingest(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batches, err := export.DecodeBatches(payload)
	if err != nil {
		c.mu.Lock()
		c.rejected++
		c.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if c.tee != nil && len(payload) > 0 {
		c.mu.Lock()
		c.tee.Write(payload)
		if payload[len(payload)-1] != '\n' {
			c.tee.Write([]byte{'\n'})
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.payloads++
	c.batches += int64(len(batches))
	lines := make([]string, 0, len(batches))
	for _, b := range batches {
		st := c.sessions[b.Session]
		if st == nil {
			st = &sessionTotals{}
			c.sessions[b.Session] = st
		}
		st.Batches++
		st.LastSeq = b.Seq
		st.LastUnixMs = b.UnixMs
		for name, d := range b.Counters {
			if st.Counters == nil {
				st.Counters = map[string]int64{}
			}
			st.Counters[name] += d
		}
		for name, v := range b.Gauges {
			if st.Gauges == nil {
				st.Gauges = map[string]float64{}
			}
			st.Gauges[name] = v
		}
		for name, h := range b.Histograms {
			if st.Histograms == nil {
				st.Histograms = map[string]histTotal{}
			}
			t := st.Histograms[name]
			t.Count += h.Count
			t.Sum += h.Sum
			st.Histograms[name] = t
		}
		for name, s := range b.Spans {
			if st.Spans == nil {
				st.Spans = map[string]spanTotal{}
			}
			t := st.Spans[name]
			t.Count += s.Count
			t.TotalSeconds += s.TotalSeconds
			st.Spans[name] = t
		}
		if !c.quiet {
			session := b.Session
			if session == "" {
				session = "-"
			}
			lines = append(lines, fmt.Sprintf(
				"batch seq=%d session=%s counters=%d gauges=%d histograms=%d spans=%d",
				b.Seq, session, len(b.Counters), len(b.Gauges), len(b.Histograms), len(b.Spans)))
		}
	}
	c.mu.Unlock()
	for _, line := range lines {
		fmt.Fprintln(c.out, line)
	}
	w.WriteHeader(http.StatusNoContent)
}

// totalsDoc is the accumulated state in its external form — served at
// /totals.json and persisted verbatim by -totals-file, so a restarted
// collector resumes from exactly what it last reported.
type totalsDoc struct {
	Payloads int64                     `json:"payloads"`
	Batches  int64                     `json:"batches"`
	Rejected int64                     `json:"rejected"`
	Sessions map[string]*sessionTotals `json:"sessions"`
}

func (c *collector) totals() totalsDoc {
	return totalsDoc{c.payloads, c.batches, c.rejected, c.sessions}
}

func (c *collector) serveTotals(w http.ResponseWriter) {
	c.mu.Lock()
	data, err := json.MarshalIndent(c.totals(), "", "  ")
	c.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.Write(data)
}

// loadTotals seeds the collector from a previously saved totals file. A
// missing file is a clean first run, not an error.
func (c *collector) loadTotals(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var doc totalsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("collect: bad totals file %s: %w", path, err)
	}
	c.mu.Lock()
	c.payloads, c.batches, c.rejected = doc.Payloads, doc.Batches, doc.Rejected
	if doc.Sessions != nil {
		c.sessions = doc.Sessions
	}
	c.mu.Unlock()
	return nil
}

// saveTotals writes the accumulated totals atomically (temp file +
// rename), so a crash mid-save leaves the previous snapshot intact.
func (c *collector) saveTotals(path string) error {
	c.mu.Lock()
	data, err := json.MarshalIndent(c.totals(), "", "  ")
	c.mu.Unlock()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// summarize prints the end-of-run reconciliation view: per-session
// batch and counter totals, sorted for stable output.
func (c *collector) summarize(out io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(out, "received %d payloads, %d batches (%d rejected), %d sessions\n",
		c.payloads, c.batches, c.rejected, len(c.sessions))
	ids := make([]string, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := c.sessions[id]
		name := id
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(out, "session %s: %d batches, last seq %d\n", name, st.Batches, st.LastSeq)
		counters := make([]string, 0, len(st.Counters))
		for cn := range st.Counters {
			counters = append(counters, cn)
		}
		sort.Strings(counters)
		for _, cn := range counters {
			fmt.Fprintf(out, "  %s %d\n", cn, st.Counters[cn])
		}
	}
}
