// Command pressctl exercises the PRESS control plane: an element-side
// agent serving the binary actuation protocol over TCP, and a controller
// that optimizes a (simulated) link by actuating every candidate
// configuration over the wire before measuring it — the full §2 loop of
// measure → search → actuate under a coherence budget.
//
// Usage:
//
//	pressctl demo                    # agent + controller in one process
//	pressctl demo -speed 0.5         # walking-pace coherence budget
//	pressctl demo -flight-dir runs   # record a durable run log
//	pressctl agent -listen :7010     # standalone agent
//	pressctl ping  -connect ADDR     # control-plane RTT against an agent
//	pressctl replay runs/RUNID       # re-execute a run log, verify KPIs
//	pressctl rundiff runs/A runs/B   # KPI deltas between two run logs
//	pressctl hotspots runs/RUNID     # phase-cost breakdown of a run log
//	pressctl loops runs/RUNID        # control-loop deadline profile of a run log
//	pressctl collect -listen :7020   # receive pushed telemetry batches (-export-url target)
//	pressctl query -tsdb-dir DIR EXPR # query a run's durable metrics history
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"time"

	"press"
	"press/internal/obs/flight"
)

// demoRestarts is the greedy restart count used by the demo — recorded
// in the manifest so replay reconstructs the identical searcher.
const demoRestarts = 2

// demoParams freezes the demo's timing-derived knobs as manifest
// parameters. The control-plane RTT is measured live (and therefore
// nondeterministic), so it is recorded here and replayed verbatim.
func demoParams(speed float64, perMeas, switchLat time.Duration, budget, restarts int) []flight.Param {
	return []flight.Param{
		{Key: "speed", Value: strconv.FormatFloat(speed, 'g', -1, 64)},
		{Key: "per_measurement_ns", Value: strconv.FormatInt(perMeas.Nanoseconds(), 10)},
		{Key: "switch_latency_ns", Value: strconv.FormatInt(switchLat.Nanoseconds(), 10)},
		{Key: "budget", Value: strconv.Itoa(budget)},
		{Key: "restarts", Value: strconv.Itoa(restarts)},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pressctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: pressctl demo|agent|ping|replay|rundiff|hotspots|loops|collect|query [flags]")
	}
	switch args[0] {
	case "demo":
		return runDemo(args[1:])
	case "agent":
		return runAgent(args[1:])
	case "ping":
		return runPing(args[1:])
	case "replay":
		return runReplay(args[1:], os.Stdout)
	case "rundiff":
		return runDiffCmd(args[1:], os.Stdout)
	case "hotspots":
		return runHotspots(args[1:], os.Stdout)
	case "loops":
		return runLoops(args[1:], os.Stdout)
	case "collect":
		return runCollect(args[1:], os.Stdout)
	case "query":
		return runQuery(args[1:], os.Stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want demo|agent|ping|replay|rundiff|hotspots|loops|collect|query)", args[0])
	}
}

// buildScenario assembles the demo space: NLoS room, three parabolic
// elements, one AP→client link. The collector (nil when accounting is
// off) is attached before construction so the initial environment traces
// are attributed too.
func buildScenario(seed uint64, pc *press.ProfCollector) (*press.Space, error) {
	env := press.NewEnvironment(12, 9, 3)
	env.Prof = pc
	env.AddScatterers(rand.New(rand.NewPCG(seed, 1)), 10, 35)
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(5.6, 4.2, 0), press.V(5.9, 5.0, 2.2), 35))

	rxPos := press.V(7.25, 4.7, 1.3)
	arr := press.NewArray(
		press.NewParabolicElement(press.V(6.0, 3.2, 1.5), rxPos),
		press.NewParabolicElement(press.V(6.5, 3.2, 1.5), rxPos),
		press.NewParabolicElement(press.V(5.6, 3.4, 1.5), rxPos),
	)
	space, err := press.NewSpace(env, arr, seed)
	if err != nil {
		return nil, err
	}
	tx := &press.Radio{
		Node:       press.Node{Pos: press.V(4.75, 4.5, 1.5), Pattern: press.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &press.Radio{
		Node:          press.Node{Pos: rxPos, Pattern: press.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	if _, err := space.AddLink("ap-client", tx, rx, press.WiFi20()); err != nil {
		return nil, err
	}
	return space, nil
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "scenario seed")
	speed := fs.Float64("speed", 0, "endpoint speed in mph (0 = static, unlimited budget)")
	perMeas := fs.Duration("per-measurement", 2*time.Millisecond, "cost of one CSI measurement")
	var tele press.TelemetryCLI
	tele.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tele.Start(os.Stderr); err != nil {
		return err
	}
	// The whole demo is one telemetry session: the flag-built stack,
	// adopted as a single scope, observes the link, agent, controller,
	// and searcher alike.
	sc := press.ScopeFromTelemetry("demo", &tele)

	space, err := buildScenario(*seed, sc.Prof())
	if err != nil {
		return err
	}
	link := space.Link("ap-client")
	link.AttachScope(sc)

	// Element-side agent on a TCP loopback listener.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	agent := press.NewAgent(1, space.Array)
	agent.AttachScope(sc)
	var mu sync.Mutex
	applied := space.Applied()
	rec := sc.Flight()
	agent.OnApply = func(cfg press.Config) {
		mu.Lock()
		applied = cfg
		mu.Unlock()
		rec.RecordActuation(flight.SourceAgent, 0, cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = agent.ListenAndServe(ctx, l) }()

	// Controller side.
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return err
	}
	defer nc.Close()
	ctrl := press.NewController(press.NewStreamConn(nc))
	ctrl.AttachScope(sc)
	hctx, hcancel := context.WithTimeout(ctx, 5*time.Second)
	defer hcancel()
	hsp := press.StartSpan(sc.Registry(), "demo/handshake")
	if err := ctrl.Handshake(hctx); err != nil {
		return err
	}
	rtt, err := ctrl.Ping(hctx)
	hsp.End()
	if err != nil {
		return err
	}
	fmt.Printf("connected to agent %d (%d elements) over %s, control RTT %v\n",
		ctrl.AgentID(), ctrl.NumElements(), l.Addr(), rtt)

	timing := press.Timing{PerMeasurement: *perMeas, SwitchLatency: rtt}
	budget := 0
	if *speed > 0 {
		budget = press.CoherenceBudgetAtSpeed(*speed, press.DefaultCarrierHz, timing)
		fmt.Printf("coherence budget at %.1f mph: %d measurements\n", *speed, budget)
	}

	// The manifest captures everything replay needs to regenerate the
	// run: the scenario seed plus the (measured, hence nondeterministic)
	// timing inputs that shaped the search, frozen as parameters.
	if rec != nil {
		man := press.NewFlightManifest("pressctl", "demo", *seed)
		man.SetParams(demoParams(*speed, *perMeas, rtt, budget, demoRestarts))
		sc.RecordManifest(man)
	}

	// Baseline.
	base, err := space.Measure("ap-client", 0)
	if err != nil {
		return err
	}
	fmt.Printf("baseline (all terminated): min SNR %.1f dB, throughput %.1f Mb/s\n",
		base.MinSNRdB(), press.ThroughputMbps(link.Grid, base.SNRdB))

	// Live loop: every candidate is actuated over the control plane,
	// then measured with whatever the agent really applied.
	var now time.Duration
	objective := press.MaxMinSNR{}
	eval := func(cfg press.Config) (float64, error) {
		cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
		defer ccancel()
		if err := ctrl.SetConfig(cctx, cfg); err != nil {
			return 0, err
		}
		mu.Lock()
		actuated := applied.Clone()
		mu.Unlock()
		csi, err := link.MeasureCSI(actuated, now.Seconds())
		if err != nil {
			return 0, err
		}
		now += timing.PerMeasurement + timing.SwitchLatency
		return objective.Score(csi), nil
	}

	searcher := press.InstrumentSearcherScope(
		press.Greedy{Rng: rand.New(rand.NewPCG(*seed, 2)), Restarts: demoRestarts}, sc)
	res, err := searcher.Search(space.Array, eval, budget)
	if err != nil && !errors.Is(err, press.ErrBudgetExhausted) {
		return err
	}
	if errors.Is(err, press.ErrBudgetExhausted) {
		fmt.Println("(coherence budget exhausted; best-effort result)")
	}

	// Actuate the winner and report.
	asp := press.StartSpan(sc.Registry(), "demo/actuate")
	actx, acancel := context.WithTimeout(ctx, 2*time.Second)
	defer acancel()
	if err := ctrl.SetConfig(actx, res.Best); err != nil {
		return err
	}
	asp.End()
	after, err := link.MeasureCSI(res.Best, now.Seconds())
	if err != nil {
		return err
	}
	fmt.Printf("optimized %s: min SNR %.1f dB (%+.1f dB), throughput %.1f Mb/s, %d measurements\n",
		space.Array.String(res.Best), after.MinSNRdB(), after.MinSNRdB()-base.MinSNRdB(),
		press.ThroughputMbps(link.Grid, after.SNRdB), res.Evaluations)
	fmt.Printf("control plane: %d sent, %d acked, %d retries\n",
		ctrl.Stats.Sent.Load(), ctrl.Stats.Acked.Load(), ctrl.Stats.Retries.Load())
	return tele.Finish(os.Stdout)
}

func runAgent(args []string) error {
	fs := flag.NewFlagSet("agent", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7010", "TCP listen address")
	elements := fs.Int("elements", 3, "array size")
	id := fs.Uint64("id", 1, "agent id")
	var tele press.TelemetryCLI
	tele.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tele.Start(os.Stderr); err != nil {
		return err
	}
	elems := make([]*press.Element, *elements)
	for i := range elems {
		elems[i] = press.NewOmniElement(press.V(float64(i), 1, 1.5))
	}
	sc := press.ScopeFromTelemetry("agent", &tele)
	agent := press.NewAgent(uint32(*id), press.NewArray(elems...))
	agent.AttachScope(sc)
	if rec := sc.Flight(); rec != nil {
		man := press.NewFlightManifest("pressctl", "agent", *id)
		man.SetParams([]flight.Param{{Key: "elements", Value: strconv.Itoa(*elements)}})
		sc.RecordManifest(man)
		agent.OnApply = func(cfg press.Config) { rec.RecordActuation(flight.SourceAgent, 0, cfg) }
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("agent %d with %d elements listening on %s\n", *id, *elements, l.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err = agent.ListenAndServe(ctx, l)
	if errors.Is(err, context.Canceled) {
		return tele.Finish(os.Stdout)
	}
	return err
}

func runPing(args []string) error {
	fs := flag.NewFlagSet("ping", flag.ContinueOnError)
	connect := fs.String("connect", "127.0.0.1:7010", "agent address")
	count := fs.Int("count", 5, "pings to send")
	var tele press.TelemetryCLI
	tele.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tele.Start(os.Stderr); err != nil {
		return err
	}
	nc, err := net.Dial("tcp", *connect)
	if err != nil {
		return err
	}
	defer nc.Close()
	ctrl := press.NewController(press.NewStreamConn(nc))
	ctrl.AttachScope(press.ScopeFromTelemetry("ping", &tele))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		return err
	}
	fmt.Printf("agent %d, %d elements\n", ctrl.AgentID(), ctrl.NumElements())
	for i := 0; i < *count; i++ {
		rtt, err := ctrl.Ping(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("rtt %v\n", rtt)
	}
	return tele.Finish(os.Stdout)
}
