package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"press/internal/obs/prof"
)

// TestHotspotsCommand records a demo run (phase accounting is implied by
// -flight-dir) and checks that the hotspots report attributes its cost
// to named phases in both text and JSON form.
func TestHotspotsCommand(t *testing.T) {
	root := t.TempDir()
	runDir := recordDemo(t, root)

	var out bytes.Buffer
	if err := runHotspots([]string{runDir}, &out); err != nil {
		t.Fatalf("hotspots: %v", err)
	}
	text := out.String()
	for _, want := range []string{"search_eval", "channel_sum", "frame_synth", "actuate", "coverage"} {
		if !strings.Contains(text, want) {
			t.Errorf("hotspots output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := runHotspots([]string{"-json", runDir}, &out); err != nil {
		t.Fatalf("hotspots -json: %v", err)
	}
	var rep prof.CostReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("hotspots -json output not JSON: %v\n%s", err, out.String())
	}
	if rep.WallNs <= 0 || len(rep.Phases) == 0 {
		t.Errorf("report = %+v", rep)
	}
	// The demo's cost is dominated by the instrumented search loop, whose
	// leaves (trace, channel_sum, frame_synth, estimate) must account for
	// most of the root wall clock.
	if rep.Coverage < 0.5 {
		t.Errorf("coverage = %.2f, want most of the wall clock attributed", rep.Coverage)
	}

	if err := runHotspots([]string{}, &out); err == nil {
		t.Error("hotspots with no args should fail")
	}
}
