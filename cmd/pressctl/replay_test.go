package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"press/internal/experiments"
	"press/internal/obs/flight"
)

// recordDemo runs the full demo (agent + controller over loopback TCP)
// with the flight recorder on and returns the run directory.
func recordDemo(t *testing.T, root string, args ...string) string {
	t.Helper()
	before, _ := os.ReadDir(root)
	if err := run(append([]string{"demo", "-flight-dir", root}, args...)); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("demo created %d run dirs, want 1 new", len(after)-len(before))
	}
	for _, e := range after {
		seen := false
		for _, b := range before {
			if b.Name() == e.Name() {
				seen = true
			}
		}
		if !seen {
			return filepath.Join(root, e.Name())
		}
	}
	t.Fatal("new run dir not found")
	return ""
}

// TestDemoRecordReplay is the end-to-end invariant the flight recorder
// exists for: a fresh demo recording replays with zero KPI mismatches.
func TestDemoRecordReplay(t *testing.T) {
	root := t.TempDir()
	runDir := recordDemo(t, root)

	var out bytes.Buffer
	if err := runReplay([]string{runDir}, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REPLAY OK") || !strings.Contains(out.String(), "0 mismatches") {
		t.Errorf("replay output:\n%s", out.String())
	}

	// JSON mode parses and agrees.
	out.Reset()
	if err := runReplay([]string{"-json", runDir}, &out); err != nil {
		t.Fatalf("replay -json: %v", err)
	}
	var report flight.VerifyReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("replay -json output not JSON: %v\n%s", err, out.String())
	}
	if !report.OK() || report.Compared == 0 {
		t.Errorf("report = %+v", report)
	}
}

// TestDemoReplayDetectsTamper truncates the back half of the recording
// (the tail alone holds only the final phase-cost snapshot, which replay
// does not verify); the regenerated stream is then longer than the
// recorded one and replay must fail.
func TestDemoReplayDetectsTamper(t *testing.T) {
	root := t.TempDir()
	runDir := recordDemo(t, root)
	seg := filepath.Join(runDir, "seg-00000.flr")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runReplay([]string{runDir}, &out); err == nil {
		t.Fatalf("replay of truncated recording passed:\n%s", out.String())
	}
}

func TestRunDiff(t *testing.T) {
	root := t.TempDir()
	a := recordDemo(t, root)
	b := recordDemo(t, root, "-seed", "43")

	var out bytes.Buffer
	if err := runDiffCmd([]string{a, b}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "differing configs") || !strings.Contains(text, "final_min_snr_db") {
		t.Errorf("rundiff output:\n%s", text)
	}

	out.Reset()
	if err := runDiffCmd([]string{"-json", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	var d flight.RunDiff
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("rundiff -json not JSON: %v\n%s", err, out.String())
	}
	if d.SameConfig || d.A.Seed != 42 || d.B.Seed != 43 || len(d.Fields) == 0 {
		t.Errorf("diff = %+v", d)
	}
}

func TestReplayUsageErrors(t *testing.T) {
	if err := runReplay(nil, &bytes.Buffer{}); err == nil {
		t.Error("replay without args accepted")
	}
	if err := runDiffCmd([]string{"only-one"}, &bytes.Buffer{}); err == nil {
		t.Error("rundiff with one arg accepted")
	}
	if err := runReplay([]string{t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("replay of empty dir accepted")
	}
	if err := runReplay([]string{"-flight-dir", t.TempDir(), "positional"}, &bytes.Buffer{}); err == nil {
		t.Error("replay with both RUNDIR and -flight-dir accepted")
	}
	if err := runReplay([]string{"-flight-dir", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("replay -flight-dir without -session accepted")
	}
	if err := runReplay([]string{"-flight-dir", t.TempDir(), "-session", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("replay of unknown session accepted")
	}
}

// TestReplayBySession drives the concurrent multi-room experiment into a
// shared flight root, then selects individual rooms' runs by session ID
// for replay and cross-run diffing — the workflow session tagging
// exists for.
func TestReplayBySession(t *testing.T) {
	root := t.TempDir()
	res, err := experiments.RunConcurrent(experiments.ConcurrentOptions{
		Sessions: 3, Budget: 12, Workers: 2, FlightRoot: root,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconciled() {
		t.Fatalf("roll-up mismatch: %+v", res)
	}

	var out bytes.Buffer
	if err := runReplay([]string{"-flight-dir", root, "-session", "room-01"}, &out); err != nil {
		t.Fatalf("replay -session: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "REPLAY OK") {
		t.Errorf("replay output:\n%s", out.String())
	}

	out.Reset()
	if err := runDiffCmd([]string{"-flight-dir", root, "-session-a", "room-00", "-session-b", "room-02"}, &out); err != nil {
		t.Fatal(err)
	}
	var d flight.RunDiff
	text := out.String()
	out.Reset()
	if err := runDiffCmd([]string{"-json", "-flight-dir", root, "-session-a", "room-00", "-session-b", "room-02"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("rundiff -json not JSON: %v\n%s", err, out.String())
	}
	if d.A.Seed != 442 || d.B.Seed != 444 {
		t.Errorf("session selection picked wrong runs: %+v\n%s", d, text)
	}
}

// TestDemoRunIsSessionTagged: the demo adopts its telemetry stack as
// one "demo" session, so its recording is selectable from a shared
// flight root by session ID too.
func TestDemoRunIsSessionTagged(t *testing.T) {
	root := t.TempDir()
	runDir := recordDemo(t, root)
	dir, man, err := flight.FindRun(root, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if dir != runDir || man.Session() != "demo" {
		t.Errorf("FindRun = %s (session %q), want %s", dir, man.Session(), runDir)
	}
}
