// Replay and cross-run diffing over flight-recorder run logs.
//
// `pressctl replay RUNDIR` re-executes the recorded run from its
// manifest — same scenario seed, same searcher RNG, same recorded
// timing knobs — into a fresh run log, then verifies the regenerated
// CSI and search-decision streams match the recording. `pressctl
// rundiff A B` summarizes two run logs and prints their KPI deltas.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strconv"
	"time"

	"press"
	"press/internal/experiments"
	"press/internal/obs/flight"
	"press/internal/obs/scope"
	"press/internal/obs/slo"
)

// resolveRunDir turns either a positional RUNDIR or a -flight-dir +
// -session pair into a concrete run directory. Session-scoped runs tag
// their manifests (flight.SessionParamKey), so a shared flight root
// holding many sessions' runs stays addressable by room.
func resolveRunDir(arg, flightDir, session string) (string, error) {
	switch {
	case arg != "" && flightDir == "":
		return arg, nil
	case arg == "" && flightDir != "":
		if session == "" {
			return "", errors.New("-flight-dir needs -session (or a session/scenario name) to pick a run")
		}
		dir, _, err := flight.FindRun(flightDir, session)
		return dir, err
	case arg != "" && flightDir != "":
		return "", errors.New("give either RUNDIR or -flight-dir, not both")
	default:
		return "", errors.New("no run selected")
	}
}

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	tol := fs.Float64("tolerance", 1e-9, "per-subcarrier KPI tolerance in dB")
	jsonOut := fs.Bool("json", false, "emit the verification report as JSON")
	keep := fs.String("out", "", "directory to write the regenerated run log into (default: a discarded temp dir)")
	flightDir := fs.String("flight-dir", "", "shared flight root to search instead of a positional RUNDIR")
	session := fs.String("session", "", "session ID (or scenario name) selecting a run under -flight-dir; newest match wins")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 || (fs.NArg() != 1 && *flightDir == "") {
		return errors.New("usage: pressctl replay [flags] RUNDIR  |  pressctl replay -flight-dir DIR -session ID [flags]")
	}
	runDir, err := resolveRunDir(fs.Arg(0), *flightDir, *session)
	if err != nil {
		return err
	}
	recorded, err := flight.ReadRun(runDir)
	if err != nil {
		return err
	}
	if recorded.Manifest == nil {
		return fmt.Errorf("replay: %s has no manifest record", runDir)
	}
	man := recorded.Manifest

	regenDir := *keep
	if regenDir == "" {
		tmp, err := os.MkdirTemp("", "press-replay-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		regenDir = tmp
	}
	rec, err := flight.Open(regenDir, 0)
	if err != nil {
		return err
	}

	switch {
	case man.Binary == "pressctl" && man.Scenario == "demo":
		err = replayDemo(man, rec)
	case man.Binary == "pressim":
		err = replayPressim(man, rec)
	default:
		rec.Close()
		return fmt.Errorf("replay: don't know how to replay binary %q scenario %q", man.Binary, man.Scenario)
	}
	if cerr := rec.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	regenerated, err := flight.ReadRun(regenDir)
	if err != nil {
		return err
	}
	report := flight.Verify(recorded, regenerated, *tol)
	if *jsonOut {
		e := json.NewEncoder(out)
		e.SetIndent("", "  ")
		if err := e.Encode(report); err != nil {
			return err
		}
	} else if err := report.WriteText(out); err != nil {
		return err
	}
	if !report.OK() {
		return errors.New("replay: regenerated KPI stream does not match the recording")
	}
	return nil
}

// manifestInt reads an integer parameter recorded in the manifest.
func manifestInt(m *flight.Manifest, key string) (int64, error) {
	v, ok := m.Param(key)
	if !ok {
		return 0, fmt.Errorf("replay: manifest missing %s param", key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replay: bad %s param %q", key, v)
	}
	return n, nil
}

// replayDemo re-executes a recorded `pressctl demo` run in-process: the
// scenario is rebuilt from the manifest seed, and the timing knobs the
// live run measured over TCP (control RTT, hence the coherence budget)
// are taken from the manifest instead, making the replay deterministic.
// The control plane itself is skipped — each candidate is applied
// directly — because the recording proves what was actuated; replay
// checks the physics and the search trajectory.
func replayDemo(man *flight.Manifest, rec *flight.Recorder) error {
	perMeasNs, err := manifestInt(man, "per_measurement_ns")
	if err != nil {
		return err
	}
	switchNs, err := manifestInt(man, "switch_latency_ns")
	if err != nil {
		return err
	}
	budget64, err := manifestInt(man, "budget")
	if err != nil {
		return err
	}
	restarts64, err := manifestInt(man, "restarts")
	if err != nil {
		return err
	}

	space, err := buildScenario(man.Seed, nil)
	if err != nil {
		return err
	}
	link := space.Link("ap-client")
	link.OnCSI = rec.RecordCSI

	regen := press.NewFlightManifest("pressctl", "demo-replay", man.Seed)
	regen.Params = man.Params
	rec.RecordManifest(regen)

	// Baseline, exactly as the live run measured it.
	if _, err := space.Measure("ap-client", 0); err != nil {
		return err
	}

	timing := press.Timing{
		PerMeasurement: time.Duration(perMeasNs),
		SwitchLatency:  time.Duration(switchNs),
	}
	var now time.Duration
	objective := press.MaxMinSNR{}
	eval := func(cfg press.Config) (float64, error) {
		rec.RecordActuation(flight.SourceReplay, 0, cfg)
		csi, err := link.MeasureCSI(cfg, now.Seconds())
		if err != nil {
			return 0, err
		}
		now += timing.PerMeasurement + timing.SwitchLatency
		return objective.Score(csi), nil
	}
	searcher := press.InstrumentSearcherFlight(
		press.Greedy{Rng: rand.New(rand.NewPCG(man.Seed, 2)), Restarts: int(restarts64)},
		nil, nil, nil, rec)
	res, err := searcher.Search(space.Array, eval, int(budget64))
	if err != nil && !errors.Is(err, press.ErrBudgetExhausted) {
		return err
	}
	rec.RecordActuation(flight.SourceReplay, 0, res.Best)
	_, err = link.MeasureCSI(res.Best, now.Seconds())
	return err
}

// replayPressim re-executes a recorded pressim run: the manifest params
// round-trip through experiments.RunSpec, and an ambient flight-only
// scope re-records the measurement stream the harnesses produce. The
// scope carries a flight-only loop tracer so loop-structured experiments
// (-exp demo) regenerate KindLoop frames too — their latencies are this
// host's wall clock, which is exactly the cross-run delta `pressctl
// rundiff` reports (flight.Verify deliberately ignores them).
func replayPressim(man *flight.Manifest, rec *flight.Recorder) error {
	spec, err := experiments.SpecFromManifest(man)
	if err != nil {
		return err
	}
	regen := press.NewFlightManifest("pressim", man.Scenario, man.Seed)
	regen.Params = man.Params
	rec.RecordManifest(regen)
	sc := scope.Adopt(man.Session(), nil, nil, nil, rec, nil).
		WithTracer(slo.NewTracer(nil, slo.Config{Flight: rec}))
	experiments.SetScope(sc)
	defer experiments.SetScope(nil)
	return spec.Run()
}

func runDiffCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rundiff", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the diff as JSON")
	flightDir := fs.String("flight-dir", "", "shared flight root to search instead of positional RUNDIRs")
	sessionA := fs.String("session-a", "", "session ID selecting run A under -flight-dir")
	sessionB := fs.String("session-b", "", "session ID selecting run B under -flight-dir")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 2 || (fs.NArg() != 2 && *flightDir == "") {
		return errors.New("usage: pressctl rundiff [flags] RUNDIR_A RUNDIR_B  |  pressctl rundiff -flight-dir DIR -session-a A -session-b B")
	}
	dirA, err := resolveRunDir(fs.Arg(0), *flightDir, *sessionA)
	if err != nil {
		return fmt.Errorf("run A: %w", err)
	}
	dirB, err := resolveRunDir(fs.Arg(1), *flightDir, *sessionB)
	if err != nil {
		return fmt.Errorf("run B: %w", err)
	}
	runA, err := flight.ReadRun(dirA)
	if err != nil {
		return err
	}
	runB, err := flight.ReadRun(dirB)
	if err != nil {
		return err
	}
	d := flight.Diff(flight.Summarize(runA), flight.Summarize(runB))
	if *jsonOut {
		e := json.NewEncoder(out)
		e.SetIndent("", "  ")
		return e.Encode(d)
	}
	return d.WriteText(out)
}
