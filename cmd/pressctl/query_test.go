package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
	"press/internal/obs/tsdb"
)

// seedQueryDir writes a small history directory: two sessions counting
// at different rates for one minute, closed so the segments are sealed.
func seedQueryDir(t *testing.T) (dir string, base int64) {
	t.Helper()
	dir = t.TempDir()
	s, err := tsdb.Open(tsdb.Options{Dir: dir, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	base = time.Now().Add(-2 * time.Minute).UnixMilli()
	for i := 0; i < 60; i++ {
		at := base + int64(i)*1000
		s.Offer(export.Batch{
			UnixMs: at, Session: "room-a",
			Counters: map[string]int64{"q_work_total": 2},
		})
		s.Offer(export.Batch{
			UnixMs: at, Session: "room-b",
			Counters: map[string]int64{"q_work_total": 3},
			Gauges:   map[string]float64{"q_depth_db": float64(i)},
		})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, base
}

func TestQueryInstantTable(t *testing.T) {
	dir, _ := seedQueryDir(t)
	var out bytes.Buffer
	if err := runQuery([]string{"-tsdb-dir", dir, "q_work_total"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"SERIES", `q_work_total{session="room-a"}`, "120", "180"} {
		if !strings.Contains(got, want) {
			t.Errorf("instant table missing %q:\n%s", want, got)
		}
	}
}

func TestQuerySessionFilterAndNDJSON(t *testing.T) {
	dir, _ := seedQueryDir(t)
	var out bytes.Buffer
	err := runQuery([]string{"-tsdb-dir", dir, "-session", "room-b", "-o", "ndjson", "q_work_total"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(out.String())
	lines := strings.Split(got, "\n")
	if len(lines) != 1 {
		t.Fatalf("ndjson lines = %d, want 1:\n%s", len(lines), got)
	}
	if !strings.Contains(got, `"session":"room-b"`) || !strings.Contains(got, `"value":180`) {
		t.Fatalf("ndjson: %s", got)
	}
}

func TestQueryRangeDefaultsToExtent(t *testing.T) {
	dir, _ := seedQueryDir(t)
	var out bytes.Buffer
	err := runQuery([]string{"-tsdb-dir", dir, "-last", "1m", "-step", "15s",
		"rate(q_work_total[30s])"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, `rate(q_work_total){session="room-a"}`) ||
		!strings.Contains(got, `rate(q_work_total){session="room-b"}`) {
		t.Fatalf("range output missing series:\n%s", got)
	}
	if !strings.Contains(got, "points)") {
		t.Fatalf("range output has no points:\n%s", got)
	}
}

func TestQueryUsageErrors(t *testing.T) {
	dir, _ := seedQueryDir(t)
	var out bytes.Buffer
	cases := [][]string{
		{"q_work_total"},                                       // no -tsdb-dir
		{"-tsdb-dir", dir},                                     // no expression
		{"-tsdb-dir", dir, "a", "b"},                           // two expressions
		{"-tsdb-dir", dir, "-o", "xml", "x"},                   // bad format
		{"-tsdb-dir", dir, "-at", "yesterday", "x"},            // bad time
		{"-tsdb-dir", dir, "rate(q_work_total"},                // parse error
		{"-tsdb-dir", dir, "-session", "a", "sum()"},           // rewrite parse error
		{"-tsdb-dir", dir, "-start", "nope", "-end", "1", "x"}, // bad range time
	}
	for _, args := range cases {
		if err := runQuery(args, &out); err == nil {
			t.Errorf("runQuery(%v) unexpectedly succeeded", args)
		}
	}
}
