package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"sort"

	"press/internal/obs"
	"press/internal/obs/flight"
)

// loopPhaseMean is the mean per-loop wall time of one top-level phase.
type loopPhaseMean struct {
	Name   string  `json:"name"`
	MeanMs float64 `json:"mean_ms"`
	// Share is the phase's fraction of the summed phase time.
	Share float64 `json:"share"`
}

// slowLoop is one entry of the slowest-loops table.
type slowLoop struct {
	Seq       uint64  `json:"seq"`
	Name      string  `json:"name"`
	TraceID   string  `json:"trace_id"`
	LatencyMs float64 `json:"latency_ms"`
	SlackMs   float64 `json:"slack_ms"`
	Missed    bool    `json:"missed"`
}

// loopReport aggregates a run's KindLoop frames: deadline-miss totals,
// latency spread, the mean phase breakdown, and the slowest iterations
// with the trace IDs that key into /tracez span trees.
type loopReport struct {
	Loops         int             `json:"loops"`
	Misses        int             `json:"misses"`
	MissRatio     float64         `json:"miss_ratio"`
	DeadlineMs    float64         `json:"deadline_ms"`
	MeanLatencyMs float64         `json:"mean_latency_ms"`
	MaxLatencyMs  float64         `json:"max_latency_ms"`
	Phases        []loopPhaseMean `json:"phases,omitempty"`
	Slowest       []slowLoop      `json:"slowest,omitempty"`
}

// buildLoopReport folds the run's loop records into a report with the
// top-N slowest iterations.
func buildLoopReport(run *flight.Run, topN int) *loopReport {
	rep := &loopReport{Loops: len(run.Loops)}
	if len(run.Loops) == 0 {
		return rep
	}
	var latSum int64
	phaseSum := map[string]int64{}
	var phaseOrder []string
	for _, lr := range run.Loops {
		if lr.Missed {
			rep.Misses++
		}
		latSum += lr.LatencyNs
		if ms := float64(lr.LatencyNs) / 1e6; ms > rep.MaxLatencyMs {
			rep.MaxLatencyMs = ms
		}
		// The deadline can change mid-run (SetDeadline); report the last.
		rep.DeadlineMs = float64(lr.DeadlineNs) / 1e6
		for _, ph := range lr.Phases {
			if _, seen := phaseSum[ph.Name]; !seen {
				phaseOrder = append(phaseOrder, ph.Name)
			}
			phaseSum[ph.Name] += ph.Value
		}
	}
	n := float64(len(run.Loops))
	rep.MissRatio = float64(rep.Misses) / n
	rep.MeanLatencyMs = float64(latSum) / n / 1e6
	var phaseTotal int64
	for _, v := range phaseSum {
		phaseTotal += v
	}
	for _, name := range phaseOrder {
		pm := loopPhaseMean{Name: name, MeanMs: float64(phaseSum[name]) / n / 1e6}
		if phaseTotal > 0 {
			pm.Share = float64(phaseSum[name]) / float64(phaseTotal)
		}
		rep.Phases = append(rep.Phases, pm)
	}

	byLatency := append([]flight.LoopRecord(nil), run.Loops...)
	sort.SliceStable(byLatency, func(i, j int) bool { return byLatency[i].LatencyNs > byLatency[j].LatencyNs })
	if topN > len(byLatency) {
		topN = len(byLatency)
	}
	for _, lr := range byLatency[:topN] {
		sl := slowLoop{
			Seq: lr.Seq, Name: lr.Name, TraceID: obs.FormatTraceID(lr.TraceID),
			LatencyMs: float64(lr.LatencyNs) / 1e6, Missed: lr.Missed,
		}
		if lr.DeadlineNs > 0 {
			sl.SlackMs = float64(lr.DeadlineNs-lr.LatencyNs) / 1e6
		}
		rep.Slowest = append(rep.Slowest, sl)
	}
	return rep
}

// writeText renders the report for terminals.
func (rep *loopReport) writeText(out io.Writer, dir string) error {
	fmt.Fprintf(out, "Control-loop deadline profile: %s\n", dir)
	if rep.Loops == 0 {
		fmt.Fprintln(out, "no loop records (was the run recorded with loop tracing on?)")
		return nil
	}
	fmt.Fprintf(out, "loops %d  misses %d  miss ratio %.2f", rep.Loops, rep.Misses, rep.MissRatio)
	if rep.DeadlineMs > 0 {
		fmt.Fprintf(out, "  deadline %.3fms", rep.DeadlineMs)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "latency: mean %.3fms  max %.3fms\n", rep.MeanLatencyMs, rep.MaxLatencyMs)
	if len(rep.Phases) > 0 {
		fmt.Fprintln(out, "\nphase breakdown (mean per loop):")
		for _, ph := range rep.Phases {
			fmt.Fprintf(out, "  %-10s %10.3fms  (%5.1f%%)\n", ph.Name, ph.MeanMs, ph.Share*100)
		}
	}
	if len(rep.Slowest) > 0 {
		fmt.Fprintln(out, "\nslowest loops:")
		fmt.Fprintf(out, "  %4s  %-10s  %10s  %10s  %-6s  %s\n",
			"seq", "name", "latency_ms", "slack_ms", "status", "trace")
		for _, sl := range rep.Slowest {
			status := "ok"
			if sl.Missed {
				status = "MISS"
			}
			fmt.Fprintf(out, "  %4d  %-10s  %10.3f  %10.3f  %-6s  %s\n",
				sl.Seq, sl.Name, sl.LatencyMs, sl.SlackMs, status, sl.TraceID)
		}
	}
	return nil
}

// runLoops renders the control-loop deadline profile of a recorded run
// from its KindLoop frames — the flight-log counterpart of the live
// /tracez endpoint.
func runLoops(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loops", flag.ContinueOnError)
	topN := fs.Int("top", 5, "slowest loops to list")
	jsonOut := fs.Bool("json", false, "emit the loop report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: pressctl loops [flags] RUNDIR")
	}
	run, err := flight.ReadRun(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := buildLoopReport(run, *topN)
	if *jsonOut {
		e := json.NewEncoder(out)
		e.SetIndent("", "  ")
		return e.Encode(rep)
	}
	return rep.writeText(out, fs.Arg(0))
}
