package main

import (
	"encoding/json"
	"errors"
	"flag"
	"io"

	"press/internal/obs/flight"
	"press/internal/obs/prof"
)

// runHotspots renders the phase-cost breakdown of a recorded run: wall
// clock attributed to named phases, cost per configuration, and cost per
// subcarrier evaluation. The run must have been recorded with phase
// accounting on (any run with -flight-dir qualifies).
func runHotspots(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotspots", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the cost report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: pressctl hotspots [flags] RUNDIR")
	}
	run, err := flight.ReadRun(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := prof.BuildReport(run)
	if err != nil {
		return err
	}
	if *jsonOut {
		e := json.NewEncoder(out)
		e.SetIndent("", "  ")
		return e.Encode(rep)
	}
	return rep.WriteText(out)
}
