package main

import "testing"

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-arg invocation accepted")
	}
	if err := run([]string{"teleport"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestBuildScenario(t *testing.T) {
	space, err := buildScenario(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if space.Array.N() != 3 || space.Array.NumConfigs() != 64 {
		t.Errorf("array %d elements / %d configs", space.Array.N(), space.Array.NumConfigs())
	}
	if space.Link("ap-client") == nil {
		t.Error("ap-client link missing")
	}
	// Deterministic per seed.
	again, err := buildScenario(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := space.Measure("ap-client", 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := again.Measure("ap-client", 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range c1.SNRdB {
		if c1.SNRdB[k] != c2.SNRdB[k] {
			t.Fatal("scenario not deterministic per seed")
		}
	}
}

func TestDemoEndToEnd(t *testing.T) {
	// The demo subcommand exercises agent + controller over TCP loopback
	// and a greedy optimization; it must complete without error.
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := runDemo([]string{"-seed", "7", "-speed", "2"}); err != nil {
		t.Fatal(err)
	}
}
