package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const collectBatchNDJSON = `{"schema":1,"unix_ms":1000,"seq":1,"session":"room-1","counters":{"work_total":5},"gauges":{"depth_db":30}}
`

func postBatch(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(collectBatchNDJSON))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post: %d", resp.StatusCode)
	}
}

// TestCollectorTotalsPersistRoundTrip: totals saved by one collector
// seed the next, and further batches accumulate on top — the restart
// continuity contract of -totals-file.
func TestCollectorTotalsPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "totals.json")

	c1 := newCollector(io.Discard, true)
	srv1 := httptest.NewServer(c1)
	postBatch(t, srv1.URL)
	srv1.Close()
	if err := c1.saveTotals(path); err != nil {
		t.Fatal(err)
	}

	c2 := newCollector(io.Discard, true)
	if err := c2.loadTotals(path); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(c2)
	defer srv2.Close()
	postBatch(t, srv2.URL)

	resp, err := http.Get(srv2.URL + "/totals.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc totalsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Payloads != 2 || doc.Batches != 2 {
		t.Fatalf("payloads=%d batches=%d, want 2/2", doc.Payloads, doc.Batches)
	}
	st := doc.Sessions["room-1"]
	if st == nil || st.Counters["work_total"] != 10 {
		t.Fatalf("reloaded session totals: %+v", st)
	}

	// A missing file is a clean first run; a corrupt one is an error.
	if err := newCollector(io.Discard, true).loadTotals(filepath.Join(t.TempDir(), "nope.json")); err != nil {
		t.Fatalf("missing totals file: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := newCollector(io.Discard, true).loadTotals(bad); err == nil {
		t.Fatal("corrupt totals file accepted")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for reading runCollect's
// progressive output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestCollectTotalsFileOnInterrupt drives the real subcommand: receive
// a batch, SIGINT the process, and find the totals persisted.
func TestCollectTotalsFileOnInterrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "totals.json")
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runCollect([]string{"-listen", "127.0.0.1:0", "-quiet", "-totals-file", path}, &out)
	}()

	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)`)
	var url string
	deadline := time.Now().Add(5 * time.Second)
	for url == "" && time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			url = "http://" + m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if url == "" {
		t.Fatalf("collector never announced its address:\n%s", out.String())
	}
	postBatch(t, url)

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runCollect did not shut down on SIGINT")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc totalsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Batches != 1 || doc.Sessions["room-1"] == nil {
		t.Fatalf("persisted totals: %s", data)
	}
}
