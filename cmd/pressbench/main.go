// Command pressbench is the benchmark side of the performance-regression
// radar: it runs `go test -bench` and captures the output into the
// canonical result schema, grows the append-only benchmark history, and
// gates changes with a benchstat-style statistical comparison.
//
// Usage:
//
//	pressbench run -count 5 ./internal/obs/...        # run + capture
//	pressbench run -input bench.txt -json BENCH_x.json
//	pressbench compare BENCH_old.json bench_new.txt   # benchstat-style table
//	pressbench gate -baseline-dir . bench_new.txt     # exit 1 on regression
//
// `gate` compares new results against the committed baselines
// (BENCH_*.json documents plus bench/history.ndjson) with a two-sided
// Mann-Whitney U test and a minimum-effect-size guard, and exits
// nonzero naming each significantly regressed benchmark.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"press/internal/obs/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pressbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: pressbench run|compare|gate [flags]")
	}
	switch args[0] {
	case "run":
		return runRun(args[1:], stdout)
	case "compare":
		return runCompare(args[1:], stdout)
	case "gate":
		return runGate(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want run|compare|gate)", args[0])
	}
}

// runRun captures benchmark results — from a file (-input), or by
// executing `go test -bench` over the given packages — and writes them
// as canonical records.
func runRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pressbench run", flag.ContinueOnError)
	input := fs.String("input", "", `parse existing "go test -bench" output from this file ("-" = stdin) instead of running benchmarks`)
	benchRe := fs.String("bench", ".", "benchmark regexp passed to go test -bench")
	count := fs.Int("count", 5, "samples per benchmark (go test -count); >=2 enables the rank test")
	benchtime := fs.String("benchtime", "", "go test -benchtime value (e.g. 100x, 1s)")
	rawOut := fs.String("raw", "", "also save the raw go test output to this file (CI artifact)")
	jsonOut := fs.String("json", "", "write canonical records to this file (one pretty document, or NDJSON when multiple packages)")
	histOut := fs.String("history", "", "append canonical records to this NDJSON history file")
	desc := fs.String("description", "", "human description stored in each record")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var recs []perf.Record
	var err error
	if *input != "" {
		recs, err = parseInput(*input, *rawOut)
	} else {
		pkgs := fs.Args()
		if len(pkgs) == 0 {
			return errors.New("run: no packages given (and no -input)")
		}
		recs, err = execBench(pkgs, *benchRe, *count, *benchtime, *rawOut)
	}
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return errors.New("run: no benchmark results found")
	}

	stamp := perf.NewRecord(time.Now().UTC().Format(time.RFC3339))
	for i := range recs {
		recs[i].Date = stamp.Date
		recs[i].Commit = stamp.Commit
		recs[i].Dirty = stamp.Dirty
		recs[i].GoVersion = stamp.GoVersion
		recs[i].Description = *desc
	}

	total := 0
	for _, r := range recs {
		total += len(r.Benchmarks)
	}
	fmt.Fprintf(stdout, "captured %d benchmarks across %d packages\n", total, len(recs))

	if *jsonOut != "" {
		if len(recs) == 1 {
			if err := perf.WriteRecordFile(*jsonOut, recs[0]); err != nil {
				return err
			}
		} else if err := writeNDJSON(*jsonOut, recs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonOut)
	}
	if *histOut != "" {
		if err := perf.AppendHistory(*histOut, recs...); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "appended %d records to %s\n", len(recs), *histOut)
	}
	return nil
}

func parseInput(path, rawOut string) ([]perf.Record, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if rawOut != "" {
		if err := os.WriteFile(rawOut, data, 0o644); err != nil {
			return nil, err
		}
	}
	return perf.ParseBench(strings.NewReader(string(data)))
}

// execBench shells out to the go tool, teeing the raw output to stderr
// (and -raw when set) while parsing it.
func execBench(pkgs []string, benchRe string, count int, benchtime, rawOut string) ([]perf.Record, error) {
	cmdArgs := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-count", strconv.Itoa(count)}
	if benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", benchtime)
	}
	cmdArgs = append(cmdArgs, pkgs...)

	cmd := exec.Command("go", cmdArgs...)
	var sb strings.Builder
	out := io.MultiWriter(&sb, os.Stderr)
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(cmdArgs, " "), err)
	}
	if rawOut != "" {
		if err := os.WriteFile(rawOut, []byte(sb.String()), 0o644); err != nil {
			return nil, err
		}
	}
	return perf.ParseBench(strings.NewReader(sb.String()))
}

func writeNDJSON(path string, recs []perf.Record) error {
	// Truncate, then append: the history writer handles encoding.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		return err
	}
	return perf.AppendHistory(path, recs...)
}

// statOptions registers the shared comparison tuning flags.
func statOptions(fs *flag.FlagSet) *perf.Options {
	opt := &perf.Options{}
	fs.Float64Var(&opt.Alpha, "alpha", perf.DefaultAlpha,
		"two-sided significance threshold for the Mann-Whitney U test")
	fs.Float64Var(&opt.MinDelta, "min-delta", perf.DefaultMinDelta,
		"minimum |relative median change| that counts as a real change")
	fs.Float64Var(&opt.FallbackDelta, "fallback-delta", perf.DefaultFallbackDelta,
		"median-change threshold used when either side has < 2 samples")
	return opt
}

// runCompare prints the benchstat-style table for OLD vs NEW.
func runCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pressbench compare", flag.ContinueOnError)
	opt := statOptions(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("compare: want exactly two arguments: OLD NEW (bench text, BENCH_*.json, or history.ndjson)")
	}
	oldRecs, err := perf.LoadResults(fs.Arg(0))
	if err != nil {
		return err
	}
	newRecs, err := perf.LoadResults(fs.Arg(1))
	if err != nil {
		return err
	}
	return perf.WriteComparisons(stdout, perf.Compare(oldRecs, newRecs, *opt))
}

// runGate compares NEW results against the committed baselines and
// exits nonzero on any statistically significant regression.
func runGate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pressbench gate", flag.ContinueOnError)
	opt := statOptions(fs)
	baseDir := fs.String("baseline-dir", ".",
		"directory holding the committed baselines (bench/BENCH_*.json, bench/history.ndjson)")
	baseline := fs.String("baseline", "",
		"gate against this one baseline file instead of -baseline-dir discovery")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return errors.New("gate: no new result files given")
	}

	var basePaths []string
	if *baseline != "" {
		basePaths = []string{*baseline}
	} else {
		basePaths = perf.BaselineFiles(*baseDir)
		if len(basePaths) == 0 {
			return fmt.Errorf("gate: no baselines found under %s", *baseDir)
		}
	}
	var baseRecs []perf.Record
	for _, p := range basePaths {
		recs, err := perf.LoadResults(p)
		if err != nil {
			return err
		}
		baseRecs = append(baseRecs, recs...)
	}
	var newRecs []perf.Record
	for _, p := range fs.Args() {
		recs, err := perf.LoadResults(p)
		if err != nil {
			return err
		}
		newRecs = append(newRecs, recs...)
	}

	cmps := perf.Compare(baseRecs, newRecs, *opt)
	if err := perf.WriteComparisons(stdout, cmps); err != nil {
		return err
	}
	if regs := perf.Regressions(cmps); len(regs) > 0 {
		names := make([]string, len(regs))
		for i, c := range regs {
			names[i] = strings.TrimSpace(c.Pkg + " " + c.Name)
		}
		return fmt.Errorf("gate: %d regression(s): %s", len(regs), strings.Join(names, ", "))
	}
	fmt.Fprintln(stdout, "gate: ok")
	return nil
}
