package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"press/internal/obs/perf"
)

// writeFixture builds a canonical BENCH document whose one benchmark
// has the given ns/op samples.
func writeFixture(t *testing.T, path, name string, ns ...float64) {
	t.Helper()
	rec := perf.Record{Schema: perf.RecordSchema, Pkg: "press/internal/obs",
		Date: "2026-08-06T00:00:00Z"}
	for _, v := range ns {
		rec.Benchmarks = appendSample(rec.Benchmarks, name, v)
	}
	if err := perf.WriteRecordFile(path, rec); err != nil {
		t.Fatal(err)
	}
}

func appendSample(bs []perf.Benchmark, name string, ns float64) []perf.Benchmark {
	for i := range bs {
		if bs[i].Name == name {
			bs[i].Samples = append(bs[i].Samples, perf.BenchSample{N: 100, NsPerOp: ns})
			return bs
		}
	}
	return append(bs, perf.Benchmark{Name: name,
		Samples: []perf.BenchSample{{N: 100, NsPerOp: ns}}})
}

// TestGateFailsOnSyntheticSlowdown is the acceptance check: a clean 2x
// slowdown (5 samples a side) must exit nonzero and name the offending
// benchmark.
func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	cur := filepath.Join(dir, "new.json")
	writeFixture(t, base, "BenchmarkHot", 100, 101, 99, 100.5, 100)
	writeFixture(t, cur, "BenchmarkHot", 200, 202, 199, 201, 200)

	var sb strings.Builder
	err := run([]string{"gate", "-baseline", base, cur}, &sb)
	if err == nil {
		t.Fatalf("gate passed a 2x slowdown:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkHot") {
		t.Errorf("gate error does not name the benchmark: %v", err)
	}
	if !strings.Contains(sb.String(), "regression") {
		t.Errorf("table missing regression verdict:\n%s", sb.String())
	}
}

// TestGatePassesOnNoise: overlapping samples stay below the gate.
func TestGatePassesOnNoise(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	cur := filepath.Join(dir, "new.json")
	writeFixture(t, base, "BenchmarkHot", 100, 104, 98, 102, 97)
	writeFixture(t, cur, "BenchmarkHot", 101, 99, 103, 100, 105)

	var sb strings.Builder
	if err := run([]string{"gate", "-baseline-dir", dir, cur}, &sb); err != nil {
		t.Fatalf("gate failed on noise: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "gate: ok") {
		t.Errorf("output:\n%s", sb.String())
	}
}

// TestGateCommittedBaselines: the repo's own committed baselines gated
// against themselves must pass — identical samples are never a
// regression.
func TestGateCommittedBaselines(t *testing.T) {
	root := filepath.Join("..", "..")
	files := perf.BaselineFiles(root)
	if len(files) == 0 {
		t.Skip("no committed baselines")
	}
	var sb strings.Builder
	args := append([]string{"gate", "-baseline-dir", root}, files...)
	if err := run(args, &sb); err != nil {
		t.Fatalf("committed baselines fail their own gate: %v\n%s", err, sb.String())
	}
}

// TestRunFromInput: `pressbench run -input` captures raw bench text
// into a canonical document and appends history.
func TestRunFromInput(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench.txt")
	text := "goos: linux\npkg: press/x\ncpu: test\n" +
		"BenchmarkA-8 100 5.0 ns/op 0 B/op 0 allocs/op\n" +
		"BenchmarkA-8 100 5.1 ns/op 0 B/op 0 allocs/op\nPASS\n"
	if err := os.WriteFile(raw, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonOut := filepath.Join(dir, "BENCH_x.json")
	hist := filepath.Join(dir, "bench", "history.ndjson")
	var sb strings.Builder
	err := run([]string{"run", "-input", raw, "-json", jsonOut, "-history", hist,
		"-description", "unit fixture"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := perf.ReadRecordFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pkg != "press/x" || rec.Description != "unit fixture" || rec.Date == "" {
		t.Errorf("record = %+v", rec)
	}
	if b := rec.Benchmark("BenchmarkA"); b == nil || len(b.Samples) != 2 {
		t.Errorf("benchmarks = %+v", rec.Benchmarks)
	}
	hrecs, err := perf.ReadHistory(hist)
	if err != nil || len(hrecs) != 1 {
		t.Fatalf("history = %+v (%v)", hrecs, err)
	}
}

// TestCompareSubcommand renders the table between two fixtures.
func TestCompareSubcommand(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeFixture(t, a, "BenchmarkHot", 100, 101, 99, 100, 100)
	writeFixture(t, b, "BenchmarkHot", 50, 51, 49, 50, 50)
	var sb strings.Builder
	if err := run([]string{"compare", a, b}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "improvement") {
		t.Errorf("table:\n%s", sb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"run"},
		{"compare", "one-arg"},
		{"gate"},
		{"gate", "-baseline-dir", os.TempDir() + "/definitely-missing-xyz", "x"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
