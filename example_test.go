package press_test

import (
	"fmt"
	"math/rand/v2"

	"press"
)

// ExampleNewSpace builds the smallest useful PRESS deployment: one room,
// one element, one link, one optimization.
func ExampleNewSpace() {
	env := press.NewEnvironment(12, 9, 3)
	env.AddScatterers(rand.New(rand.NewPCG(1, 2)), 10, 35)
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(5.6, 4.2, 0), press.V(5.9, 5.0, 2.2), 35))

	client := press.V(7.25, 4.7, 1.3)
	arr := press.NewArray(press.NewParabolicElement(press.V(6, 3.2, 1.5), client))
	space, err := press.NewSpace(env, arr, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	ap := &press.Radio{
		Node:       press.Node{Pos: press.V(4.75, 4.5, 1.5), Pattern: press.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	sta := &press.Radio{Node: press.Node{Pos: client, Pattern: press.Omni{PeakGainDBi: 2}}, NoiseFigureDB: 6}
	if _, err := space.AddLink("link", ap, sta, press.WiFi20()); err != nil {
		fmt.Println(err)
		return
	}
	out, err := space.Optimize(
		[]press.Goal{{Link: "link", Objective: press.MaxMinSNR{}}},
		press.OptimizeOptions{},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("searched %d configurations\n", out.Evaluations)
	// Output:
	// searched 4 configurations
}

// ExampleSP4TStates shows the paper's prototype switch bank (Figure 3)
// in its own notation.
func ExampleSP4TStates() {
	for _, s := range press.SP4TStates() {
		fmt.Println(s)
	}
	// Output:
	// 0
	// 0.5π
	// π
	// T
}

// ExampleParseState round-trips the paper's configuration notation.
func ExampleParseState() {
	st, _ := press.ParseState("1.5π")
	fmt.Println(st)
	st, _ = press.ParseState("T")
	fmt.Println(st)
	// Output:
	// 1.5π
	// T
}

// ExampleCoherenceBudgetAtSpeed shows the §2 timing constraint: how many
// configurations a controller may measure before the channel moves on.
func ExampleCoherenceBudgetAtSpeed() {
	fast := press.Timing{PerMeasurement: 1e6} // 1 ms in nanoseconds
	fmt.Println("walking:", press.CoherenceBudgetAtSpeed(0.5, press.DefaultCarrierHz, fast))
	fmt.Println("running:", press.CoherenceBudgetAtSpeed(6, press.DefaultCarrierHz, fast))
	fmt.Println("prototype at walking pace:",
		press.CoherenceBudgetAtSpeed(0.5, press.DefaultCarrierHz, press.PrototypeTiming))
	// Output:
	// walking: 97
	// running: 8
	// prototype at walking pace: 1
}

// ExampleWiFi20 shows the paper's primary OFDM grid.
func ExampleWiFi20() {
	g := press.WiFi20()
	fmt.Printf("%d used subcarriers on %.3f GHz\n", g.NumUsed(), g.CenterHz/1e9)
	// Output:
	// 52 used subcarriers on 2.462 GHz
}
